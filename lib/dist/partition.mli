(** One isolated ACC instance owning a contiguous warehouse range.

    Each partition has its own database, lock-service backend, WAL, and
    executor; partitions share nothing.  A transaction whose footprint stays
    inside one partition's range runs on that partition exactly as on a
    single-node system; anything else goes through {!Coordinator}. *)

type t

val make : id:int -> lo:int -> hi:int -> Acc_txn.Executor.t -> t
(** [make ~id ~lo ~hi eng] wraps an executor as partition [id] owning
    warehouses [lo..hi] (inclusive).  Raises [Invalid_argument] on a
    negative id or an empty/invalid range. *)

val id : t -> int
val engine : t -> Acc_txn.Executor.t
val range : t -> int * int
val owns : t -> int -> bool
(** [owns t w] — does warehouse [w] fall in this partition's range? *)

(** {1 Transaction-id bands}

    {!Dist_driver} starts each partition's executor at [txn_base id], giving
    every transaction in a distributed run a globally unique id.  The span
    layer and [acc-trace-profile] recover the partition from the id alone
    ([--txn-band]); single-node runs (ids starting at 1) all map to
    partition 0. *)

val txn_stride : int
(** Ids per band ([2{^24}]). *)

val txn_base : int -> int
(** [txn_base id = id * txn_stride]. *)

val partition_of_txn : int -> int
(** Inverse of the band assignment. *)

val ranges : warehouses:int -> partitions:int -> (int * int) list
(** Contiguous near-equal split of warehouses [1..warehouses] into
    [partitions] ranges (earlier partitions absorb the remainder).  Raises
    [Invalid_argument] if [partitions < 1] or there are fewer warehouses
    than partitions. *)
