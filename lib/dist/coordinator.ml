(* Two-phase commit over ACC partitions.

   A cross-partition transaction is a set of per-partition branches, each a
   normal ACC program instance.  The coordinator drives them through
   prepare/decide/apply:

   - branches prepare in ascending partition-id order ([Runtime.prepare]
     runs every step, logs the Prepare vote, and keeps the assertional and
     compensation locks held across the in-doubt window — the conventional
     locks were already released at each step boundary, so the prepare
     window pins only what ACC would pin anyway);
   - the decision is durable once it is in the decision log (the
     coordinator's analogue of a commit record); no logged decision means
     abort — presumed abort, so a crash before logging needs no cleanup;
   - commit applies [Runtime.commit_prepared] per branch; abort applies
     [Runtime.abort_prepared], i.e. compensation replay, ACC's logical undo,
     as the distributed cancel path.

   Crash points:
   - "dist.prepare"          (in Executor.prepare: vote logged, locks held)
   - "dist.decide"           (decision chosen, not yet durable -> presumed
                              abort on recovery)
   - "dist.decision.durable" (decision durable, participants untold -> the
                              decision log resolves the in-doubt branches) *)

module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Program = Acc_core.Program
module Recovery = Acc_wal.Recovery
module Fault = Acc_fault.Fault
module Trace = Acc_obs.Trace
module Stats = Acc_util.Stats

let cp_decide = Fault.register "dist.decide"
let cp_decision_durable = Fault.register "dist.decision.durable"

type decision = Commit | Abort

module Decision_log = struct
  type t = { mu : Mutex.t; tbl : (int, decision) Hashtbl.t }

  let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

  let record t ~gid d =
    Mutex.lock t.mu;
    Hashtbl.replace t.tbl gid d;
    Mutex.unlock t.mu

  let lookup t ~gid =
    Mutex.lock t.mu;
    let r = Hashtbl.find_opt t.tbl gid in
    Mutex.unlock t.mu;
    r

  let size t =
    Mutex.lock t.mu;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.mu;
    n

  let max_gid t =
    Mutex.lock t.mu;
    let m = Hashtbl.fold (fun gid _ m -> max gid m) t.tbl 0 in
    Mutex.unlock t.mu;
    m
end

type t = {
  parts : Partition.t array;
  log : Decision_log.t;
  next_gid : int Atomic.t;
  committed : int Atomic.t;
  aborted : int Atomic.t;
  stats_mu : Mutex.t;
  prepare_hold : Stats.Tally.t;  (* seconds, guarded by stats_mu *)
  prepare_hold_hist : Acc_util.Metrics.Histogram.t;
      (* same windows as [prepare_hold], but quantile-capable and lock-free
         to read — the registry's acc_coordinator_prepare_hold_seconds *)
}

(* [first_gid] matters when rebuilding after a crash: a fresh gid counter
   restarting at 1 could collide with a stale in-doubt branch's gid and make
   an old decision-log entry speak for a new transaction.  Restart above the
   watermark of every surviving gid (decision log + prepared WAL records). *)
let create ?log ?(first_gid = 1) parts =
  if Array.length parts = 0 then invalid_arg "Coordinator.create: no partitions";
  let sorted = Array.copy parts in
  Array.sort (fun a b -> compare (Partition.id a) (Partition.id b)) sorted;
  let log = match log with Some l -> l | None -> Decision_log.create () in
  let t =
    {
      parts = sorted;
      log;
      next_gid = Atomic.make (max first_gid (Decision_log.max_gid log + 1));
      committed = Atomic.make 0;
      aborted = Atomic.make 0;
      stats_mu = Mutex.create ();
      prepare_hold = Stats.Tally.create ();
      prepare_hold_hist = Acc_util.Metrics.Histogram.create ();
    }
  in
  let reg ?help name v = Acc_obs.Registry.register ?help name v in
  reg "acc_coordinator_cross_committed_total" ~help:"cross-partition 2PC commits"
    (Acc_obs.Registry.Poll_counter (fun () -> Atomic.get t.committed));
  reg "acc_coordinator_cross_aborted_total" ~help:"cross-partition 2PC aborts"
    (Acc_obs.Registry.Poll_counter (fun () -> Atomic.get t.aborted));
  reg "acc_coordinator_decisions_total" ~help:"durable decision-log entries"
    (Acc_obs.Registry.Poll_counter (fun () -> Decision_log.size t.log));
  reg "acc_coordinator_prepare_hold_seconds"
    ~help:"first prepare to decision applied, per cross transaction"
    (Acc_obs.Registry.Histogram t.prepare_hold_hist);
  t

let partitions t = t.parts
let decision_log t = t.log

let partition_of t w =
  let rec find i =
    if i >= Array.length t.parts then
      invalid_arg (Printf.sprintf "Coordinator.partition_of: warehouse %d unowned" w)
    else if Partition.owns t.parts.(i) w then t.parts.(i)
    else find (i + 1)
  in
  find 0

let decision_of t ~gid = Decision_log.lookup t.log ~gid

let cross_committed t = Atomic.get t.committed
let cross_aborted t = Atomic.get t.aborted

let prepare_hold_snapshot t =
  Mutex.lock t.stats_mu;
  let s = Stats.Tally.merge t.prepare_hold (Stats.Tally.create ()) in
  Mutex.unlock t.stats_mu;
  s

let record_hold t dt =
  Mutex.lock t.stats_mu;
  Stats.Tally.add t.prepare_hold dt;
  Mutex.unlock t.stats_mu;
  Acc_util.Metrics.Histogram.record t.prepare_hold_hist dt

type outcome = Committed | Aborted

(* Prepare every branch in ascending partition-id order (a global acquisition
   order, so two cross transactions cannot deadlock on partitions), then
   decide, log, and apply.  Any branch failing before its vote has already
   rolled itself back; its prepared predecessors get the abort decision. *)
let run_cross ?options ?stop t branches =
  if branches = [] then invalid_arg "Coordinator.run_cross: no branches";
  let branches =
    List.sort
      (fun (p1, _) (p2, _) -> compare (Partition.id p1) (Partition.id p2))
      branches
  in
  let gid = Atomic.fetch_and_add t.next_gid 1 in
  let t0 = Unix.gettimeofday () in
  let prepared, all_voted =
    List.fold_left
      (fun (acc, ok) (part, inst) ->
        if not ok then (acc, false)
        else
          match Runtime.prepare ?options ?stop (Partition.engine part) inst ~gid with
          | Ok p -> (p :: acc, true)
          | Error _ -> (acc, false))
      ([], true) branches
  in
  let prepared = List.rev prepared in
  let commit = all_voted in
  Fault.trip cp_decide;
  Decision_log.record t.log ~gid (if commit then Commit else Abort);
  Fault.trip cp_decision_durable;
  if Trace.enabled () then
    Trace.emit (Trace.Decide { gid; commit; participants = List.length branches });
  List.iter
    (fun p ->
      if commit then Runtime.commit_prepared p else Runtime.abort_prepared p)
    prepared;
  record_hold t (Unix.gettimeofday () -. t0);
  if commit then begin
    Atomic.incr t.committed;
    Committed
  end
  else begin
    Atomic.incr t.aborted;
    Aborted
  end

(* Recovery-side resolution: every in-doubt branch a partition's recovery
   reports is resolved from the decision log — a logged Commit finishes it,
   anything else (logged Abort or no entry at all: presumed abort) runs its
   compensation.  Returns how many branches were resolved. *)
let resolve_in_doubt log eng (report : Recovery.report) =
  List.iter
    (fun (d : Recovery.in_doubt) ->
      let commit =
        match Decision_log.lookup log ~gid:d.Recovery.i_gid with
        | Some Commit -> true
        | Some Abort | None -> false
      in
      Replay.resolve_in_doubt eng ~commit d)
    report.Recovery.in_doubt;
  List.length report.Recovery.in_doubt
