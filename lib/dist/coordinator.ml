(* Two-phase commit over ACC partitions.

   A cross-partition transaction is a set of per-partition branches, each a
   normal ACC program instance.  The coordinator drives them through
   prepare/decide/apply:

   - branches prepare in ascending partition-id order ([Runtime.prepare]
     runs every step, logs the Prepare vote, and keeps the assertional and
     compensation locks held across the in-doubt window — the conventional
     locks were already released at each step boundary, so the prepare
     window pins only what ACC would pin anyway);
   - the decision is durable once it is in the decision log (the
     coordinator's analogue of a commit record); no logged decision means
     abort — presumed abort, so a crash before logging needs no cleanup;
   - commit applies [Runtime.commit_prepared] per branch; abort applies
     [Runtime.abort_prepared], i.e. compensation replay, ACC's logical undo,
     as the distributed cancel path.

   Crash points:
   - "dist.prepare"          (in Executor.prepare: vote logged, locks held)
   - "dist.decide"           (decision chosen, not yet durable -> presumed
                              abort on recovery)
   - "dist.decision.durable" (decision durable, participants untold -> the
                              decision log resolves the in-doubt branches) *)

module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Program = Acc_core.Program
module Recovery = Acc_wal.Recovery
module Fault = Acc_fault.Fault
module Trace = Acc_obs.Trace
module Stats = Acc_util.Stats

let cp_decide = Fault.register "dist.decide"
let cp_decision_durable = Fault.register "dist.decision.durable"

type decision = Commit | Abort

(* The coordinator's commit record.  In-memory ([Mem]) for tests that only
   need the protocol; file-backed ([File]) for anything that survives a
   coordinator death: an append-only log of fixed 9-byte records (8-byte
   big-endian gid, 1 decision byte) behind the WAL's magic+version header
   discipline.  [record] fsyncs before returning — "dist.decision.durable"
   really means the bytes are on disk — and a torn tail (a crash mid-append)
   is truncated away at open, exactly like the WAL's load path.  Lookups
   always hit the in-memory mirror; the file is only read at open. *)
module Decision_log = struct
  type backend = Mem | File of { fd : Unix.file_descr; path : string }

  type t = { mu : Mutex.t; tbl : (int, decision) Hashtbl.t; backend : backend }

  let magic = "ACCDEC\x00\x00"
  let format_version = 1
  let record_size = 9

  let create () =
    { mu = Mutex.create (); tbl = Hashtbl.create 64; backend = Mem }

  let path t = match t.backend with Mem -> None | File f -> Some f.path

  let encode_record gid d =
    let b = Bytes.create record_size in
    Bytes.set_int64_be b 0 (Int64.of_int gid);
    Bytes.set b 8 (match d with Commit -> '\001' | Abort -> '\000');
    b

  (* A record is only as durable as every one of its bytes: loop short
     writes to completion and fail loudly if the kernel cannot take them
     — silently dropping a tail here would turn an acked commit into a
     torn record the next open truncates away. *)
  let rec write_all ~who fd b off len =
    if len > 0 then
      match Unix.write fd b off len with
      | 0 -> failwith (who ^ ": short write to decision log")
      | n -> write_all ~who fd b (off + n) (len - n)

  let open_file path =
    let module Header = Acc_wal.Log.Header in
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    let size = (Unix.fstat fd).Unix.st_size in
    let tbl = Hashtbl.create 64 in
    let hlen = Header.size ~magic in
    if size < hlen then begin
      (* empty, or a crash during the initial header write left a torn
         header: either way the file provably contains no complete
         record, so reinitialise rather than failing every open *)
      if size > 0 then begin
        Unix.ftruncate fd 0;
        ignore (Unix.lseek fd 0 Unix.SEEK_SET)
      end;
      let h = Header.to_string ~magic ~version:format_version in
      write_all ~who:"Decision_log.open_file" fd
        (Bytes.unsafe_of_string h) 0 (String.length h);
      Unix.fsync fd
    end
    else begin
      let rec really_read b off len =
        if len > 0 then
          match Unix.read fd b off len with
          | 0 -> off
          | n -> really_read b (off + n) (len - n)
        else off
      in
      let hb = Bytes.create hlen in
      let got = really_read hb 0 hlen in
      Header.check ~magic ~version:format_version ~what:"decision log"
        ~who:"Decision_log.open_file" ~path
        (Bytes.sub_string hb 0 got);
      let body = size - hlen in
      let whole = body / record_size * record_size in
      let b = Bytes.create whole in
      let got = really_read b 0 whole in
      let n = got / record_size in
      for i = 0 to n - 1 do
        let off = i * record_size in
        let gid = Int64.to_int (Bytes.get_int64_be b off) in
        let d = if Bytes.get b (off + 8) = '\001' then Commit else Abort in
        Hashtbl.replace tbl gid d
      done;
      if whole < body then
        (* torn tail: a crash mid-append left a partial record *)
        Unix.ftruncate fd (hlen + whole);
      ignore (Unix.lseek fd 0 Unix.SEEK_END)
    end;
    { mu = Mutex.create (); tbl; backend = File { fd; path } }

  let record t ~gid d =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        let fresh = Hashtbl.find_opt t.tbl gid <> Some d in
        if fresh then begin
          Hashtbl.replace t.tbl gid d;
          match t.backend with
          | Mem -> ()
          | File { fd; _ } ->
              let b = encode_record gid d in
              write_all ~who:"Decision_log.record" fd b 0 record_size;
              Unix.fsync fd
        end)

  let lookup t ~gid =
    Mutex.lock t.mu;
    let r = Hashtbl.find_opt t.tbl gid in
    Mutex.unlock t.mu;
    r

  let size t =
    Mutex.lock t.mu;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.mu;
    n

  let max_gid t =
    Mutex.lock t.mu;
    let m = Hashtbl.fold (fun gid _ m -> max gid m) t.tbl 0 in
    Mutex.unlock t.mu;
    m

  let close t =
    match t.backend with
    | Mem -> ()
    | File { fd; _ } -> ( try Unix.close fd with Unix.Unix_error _ -> ())
end

type t = {
  parts : Partition.t array;
  log : Decision_log.t;
  next_gid : int Atomic.t;
  committed : int Atomic.t;
  aborted : int Atomic.t;
  stats_mu : Mutex.t;
  prepare_hold : Stats.Tally.t;  (* seconds, guarded by stats_mu *)
  prepare_hold_hist : Acc_util.Metrics.Histogram.t;
      (* same windows as [prepare_hold], but quantile-capable and lock-free
         to read — the registry's acc_coordinator_prepare_hold_seconds *)
}

(* [first_gid] matters when rebuilding after a crash: a fresh gid counter
   restarting at 1 could collide with a stale in-doubt branch's gid and make
   an old decision-log entry speak for a new transaction.  Restart above the
   watermark of every surviving gid (decision log + prepared WAL records). *)
let create ?log ?(first_gid = 1) parts =
  if Array.length parts = 0 then invalid_arg "Coordinator.create: no partitions";
  let sorted = Array.copy parts in
  Array.sort (fun a b -> compare (Partition.id a) (Partition.id b)) sorted;
  let log = match log with Some l -> l | None -> Decision_log.create () in
  let t =
    {
      parts = sorted;
      log;
      next_gid = Atomic.make (max first_gid (Decision_log.max_gid log + 1));
      committed = Atomic.make 0;
      aborted = Atomic.make 0;
      stats_mu = Mutex.create ();
      prepare_hold = Stats.Tally.create ();
      prepare_hold_hist = Acc_util.Metrics.Histogram.create ();
    }
  in
  let reg ?help name v = Acc_obs.Registry.register ?help name v in
  reg "acc_coordinator_cross_committed_total" ~help:"cross-partition 2PC commits"
    (Acc_obs.Registry.Poll_counter (fun () -> Atomic.get t.committed));
  reg "acc_coordinator_cross_aborted_total" ~help:"cross-partition 2PC aborts"
    (Acc_obs.Registry.Poll_counter (fun () -> Atomic.get t.aborted));
  reg "acc_coordinator_decisions_total" ~help:"durable decision-log entries"
    (Acc_obs.Registry.Poll_counter (fun () -> Decision_log.size t.log));
  reg "acc_coordinator_prepare_hold_seconds"
    ~help:"first prepare to decision applied, per cross transaction"
    (Acc_obs.Registry.Histogram t.prepare_hold_hist);
  t

let partitions t = t.parts
let decision_log t = t.log

let partition_of t w =
  let rec find i =
    if i >= Array.length t.parts then
      invalid_arg (Printf.sprintf "Coordinator.partition_of: warehouse %d unowned" w)
    else if Partition.owns t.parts.(i) w then t.parts.(i)
    else find (i + 1)
  in
  find 0

let decision_of t ~gid = Decision_log.lookup t.log ~gid

let cross_committed t = Atomic.get t.committed
let cross_aborted t = Atomic.get t.aborted

let prepare_hold_snapshot t =
  Mutex.lock t.stats_mu;
  let s = Stats.Tally.merge t.prepare_hold (Stats.Tally.create ()) in
  Mutex.unlock t.stats_mu;
  s

let record_hold t dt =
  Mutex.lock t.stats_mu;
  Stats.Tally.add t.prepare_hold dt;
  Mutex.unlock t.stats_mu;
  Acc_util.Metrics.Histogram.record t.prepare_hold_hist dt

type outcome = Committed | Aborted

(* Prepare every branch in ascending partition-id order (a global acquisition
   order, so two cross transactions cannot deadlock on partitions), then
   decide, log, and apply.  Any branch failing before its vote has already
   rolled itself back; its prepared predecessors get the abort decision. *)
let run_cross ?options ?stop t branches =
  if branches = [] then invalid_arg "Coordinator.run_cross: no branches";
  let branches =
    List.sort
      (fun (p1, _) (p2, _) -> compare (Partition.id p1) (Partition.id p2))
      branches
  in
  let gid = Atomic.fetch_and_add t.next_gid 1 in
  let t0 = Unix.gettimeofday () in
  let prepared, all_voted =
    List.fold_left
      (fun (acc, ok) (part, inst) ->
        if not ok then (acc, false)
        else
          match Runtime.prepare ?options ?stop (Partition.engine part) inst ~gid with
          | Ok p -> (p :: acc, true)
          | Error _ -> (acc, false))
      ([], true) branches
  in
  let prepared = List.rev prepared in
  let commit = all_voted in
  Fault.trip cp_decide;
  Decision_log.record t.log ~gid (if commit then Commit else Abort);
  Fault.trip cp_decision_durable;
  if Trace.enabled () then
    Trace.emit (Trace.Decide { gid; commit; participants = List.length branches });
  List.iter
    (fun p ->
      if commit then Runtime.commit_prepared p else Runtime.abort_prepared p)
    prepared;
  record_hold t (Unix.gettimeofday () -. t0);
  if commit then begin
    Atomic.incr t.committed;
    Committed
  end
  else begin
    Atomic.incr t.aborted;
    Aborted
  end

(* Recovery-side resolution: every in-doubt branch a partition's recovery
   reports is resolved from the decision log — a logged Commit finishes it,
   anything else (logged Abort or no entry at all: presumed abort) runs its
   compensation.  Returns how many branches were resolved. *)
let resolve_in_doubt log eng (report : Recovery.report) =
  List.iter
    (fun (d : Recovery.in_doubt) ->
      let commit =
        match Decision_log.lookup log ~gid:d.Recovery.i_gid with
        | Some Commit -> true
        | Some Abort | None -> false
      in
      Replay.resolve_in_doubt eng ~commit d)
    report.Recovery.in_doubt;
  List.length report.Recovery.in_doubt

(* Same resolution, but the decision comes from [ask] (normally a Resolve
   RPC against the coordinator, with the durable log as fallback) instead
   of a direct log lookup.  [None] leaves the branch blocked — the caller
   decides whether presumed abort applies, not this function. *)
let resolve_in_doubt_via ~ask eng (report : Recovery.report) =
  List.fold_left
    (fun (resolved, blocked) (d : Recovery.in_doubt) ->
      match ask d.Recovery.i_gid with
      | Some commit ->
          Replay.resolve_in_doubt eng ~commit d;
          (resolved + 1, blocked)
      | None -> (resolved, blocked + 1))
    (0, 0) report.Recovery.in_doubt

(* The coordinator driven over the RPC transport: one participant and one
   connection per partition, plus a resolver connection that answers
   Resolve from whatever core currently holds the decision log (so a
   failed-over core picks up resolution duty the instant [recover] swaps
   it in).

   Timeouts vote no / retry with decorrelated jitter; every handler on the
   other side is idempotent, so a retry that duplicates a delivered frame
   is safe.  After the decision is durable, the coordinator never gives up
   on a participant: a Decide lost to the wire is settled from the durable
   log before [run_cross] returns, so an acked commit cannot be lost to a
   transport fault. *)
module Remote = struct
  module Backoff = Acc_txn.Backoff

  type link = { participant : Participant.t; conn : Transport.t }

  type nonrec t = {
    cell : t ref;  (* the current core; [recover] swaps it *)
    links : link array;
    resolver : Transport.t;
    transport_kind : Transport.kind;
    retries : int;
    prepare_deadline : float;
    decide_deadline : float;
  }

  let core r = !(r.cell)
  let participants r = Array.map (fun l -> l.participant) r.links
  let transport r = r.transport_kind

  let make ?options ?stop ?(retries = 4) ?(transport = `Loopback)
      ?(faults = Fault.Netfault.none) ?(prepare_deadline = 5.0)
      ?(decide_deadline = 0.2) core =
    let connect handler =
      match transport with
      | `Loopback -> Transport.loopback ~faults handler
      | `Pipe -> Transport.pipe ~faults handler
    in
    let links =
      Array.map
        (fun part ->
          let participant = Participant.make ?options ?stop part in
          { participant; conn = connect (Participant.handle participant) })
        (partitions core)
    in
    let cell = ref core in
    let resolver =
      connect (function
        | Transport.Resolve { gid } ->
            Transport.Decide
              { gid; commit = decision_of !cell ~gid = Some Commit }
        | m ->
            invalid_arg
              ("Coordinator.Remote resolver: unexpected request "
              ^ Transport.msg_kind m))
    in
    {
      cell;
      links;
      resolver;
      transport_kind = transport;
      retries;
      prepare_deadline;
      decide_deadline;
    }

  let link_of r part =
    let id = Partition.id part in
    match
      Array.find_opt
        (fun l -> Partition.id (Participant.partition l.participant) = id)
        r.links
    with
    | Some l -> l
    | None -> invalid_arg "Coordinator.Remote: branch on an unknown partition"

  let rpc r conn ~deadline msg =
    let bo = Backoff.Jitter.create () in
    let rec go attempt =
      match Transport.call ~deadline conn msg with
      | Some reply -> Some reply
      | None ->
          if attempt > r.retries then None
          else begin
            if Trace.enabled () then
              Trace.emit
                (Trace.Rpc_retry
                   {
                     msg = Transport.msg_kind msg;
                     gid = Transport.gid_of msg;
                     attempt;
                   });
            (match r.transport_kind with
            | `Pipe -> Unix.sleepf (Backoff.Jitter.next bo ~attempt)
            | `Loopback -> ());
            go (attempt + 1)
          end
    in
    go 1

  let run_cross r branches =
    if branches = [] then
      invalid_arg "Coordinator.Remote.run_cross: no branches";
    let core = !(r.cell) in
    let branches =
      List.sort
        (fun (p1, _) (p2, _) -> compare (Partition.id p1) (Partition.id p2))
        branches
    in
    let gid = Atomic.fetch_and_add core.next_gid 1 in
    let t0 = Unix.gettimeofday () in
    let touched, all_voted =
      List.fold_left
        (fun (acc, ok) (part, inst) ->
          if not ok then (acc, false)
          else begin
            let link = link_of r part in
            Participant.stage link.participant ~gid inst;
            match
              rpc r link.conn ~deadline:r.prepare_deadline
                (Transport.Prepare { gid; part = Partition.id part })
            with
            | Some (Transport.Vote { ok = v; _ }) -> (link :: acc, v)
            | Some _ | None -> (link :: acc, false)
          end)
        ([], true) branches
    in
    let touched = List.rev touched in
    let commit = all_voted in
    Fault.trip cp_decide;
    Decision_log.record core.log ~gid (if commit then Commit else Abort);
    Fault.trip cp_decision_durable;
    if Trace.enabled () then
      Trace.emit
        (Trace.Decide { gid; commit; participants = List.length branches });
    List.iter
      (fun link ->
        (match
           rpc r link.conn ~deadline:r.decide_deadline
             (Transport.Decide { gid; commit })
         with
        | Some (Transport.Ack _) -> ()
        | Some _ | None -> ());
        (* the decision is durable: a participant the wire failed is
           settled from the log right now, never left in doubt *)
        ignore
          (Participant.settle_gid link.participant
             ~ask:(fun g ->
               match Decision_log.lookup core.log ~gid:g with
               | Some Commit -> Some true
               | Some Abort -> Some false
               | None -> None)
             gid);
        Participant.forget link.participant ~gid)
      touched;
    record_hold core (Unix.gettimeofday () -. t0);
    if commit then begin
      Atomic.incr core.committed;
      Committed
    end
    else begin
      Atomic.incr core.aborted;
      Aborted
    end

  (* Coordinator failover: the old core died (its in-memory state is gone);
     rebuild from the on-disk decision log, restart the gid counter above
     every surviving gid, swap the core in, and drive every participant's
     in-doubt branches to resolution over the transport.  Presumed abort is
     sound here precisely because failover runs quiescently: an unlogged
     decision can only belong to a coordinator that died before its
     durability point. *)
  let recover ?first_gid r =
    let old = !(r.cell) in
    let path =
      match Decision_log.path old.log with
      | Some p -> p
      | None ->
          invalid_arg
            "Coordinator.Remote.recover: decision log is not file-backed"
    in
    Decision_log.close old.log;
    let log = Decision_log.open_file path in
    let survivors =
      Array.fold_left
        (fun m l -> max m (Participant.max_gid l.participant))
        0 r.links
      + 1
    in
    let first_gid = max (Option.value first_gid ~default:1) survivors in
    r.cell := create ~log ~first_gid (partitions old);
    let ask g =
      match
        rpc r r.resolver ~deadline:r.decide_deadline
          (Transport.Resolve { gid = g })
      with
      | Some (Transport.Decide { commit; _ }) -> Some commit
      | Some _ | None ->
          (* wire too faulty even with retries: read the durable log
             directly (same presumed-abort rule the resolver applies) *)
          Some (Decision_log.lookup log ~gid:g = Some Commit)
    in
    Array.fold_left
      (fun n l -> n + fst (Participant.settle l.participant ~ask))
      0 r.links

  let close r =
    Array.iter (fun l -> Transport.close l.conn) r.links;
    Transport.close r.resolver
end
