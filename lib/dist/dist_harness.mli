(** Crash-restart harness for the partitioned system: the no-lost-decision
    oracle.

    Runs a partitioned TPC-C workload one transaction at a time, crashes at
    the 2PC crash points (["dist.prepare"], ["dist.decide"],
    ["dist.decision.durable"]), restarts every partition from (baseline,
    WAL) plus the coordinator's surviving decision log, and checks that no
    partition stays in doubt, that a logged Commit decision is never lost,
    that an unlogged one is presumed aborted and the transaction cleanly
    re-submitted, and that the merged database satisfies the TPC-C
    consistency conditions throughout. *)

type config = {
  params : Acc_tpcc.Params.t;
  partitions : int;
  seed : int;
  txns : int;
  remote_customer_rate : float;  (** elevated so short runs cross partitions *)
  remote_item_rate : float;
  hits_per_point : int;
  chaos_p : float;
  verbose : bool;
}

val default_config : config
(** 4 warehouses over 2 partitions, elevated remote rates. *)

type result = { r_label : string; r_crashes : int; r_errors : string list }

val failed : result -> bool

val sweep : ?config:config -> unit -> result list
(** Deterministic sweep: dry-run to count each dist.* point's passages
    (coverage failure if a point never trips), then crash at a spread of
    hits per point.  First result is the zero-fault baseline. *)

val chaos : ?config:config -> seed:int -> unit -> result
(** Probabilistic crashes at every registered point, re-armed with a derived
    seed after each recovery. *)

val pp_result : Format.formatter -> result -> unit
