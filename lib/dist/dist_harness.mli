(** Crash-restart harness for the partitioned system: the no-lost-decision
    oracle.

    Runs a partitioned TPC-C workload one transaction at a time with the
    coordinator driven over the loopback transport (framing, fault layer,
    retries and idempotent handlers all under test; loopback consults no
    wall clock, so runs stay deterministic) and a file-backed, fsynced
    decision log.  Crashes at the 2PC crash points (["dist.prepare"],
    ["dist.decide"], ["dist.decision.durable"], ["dist.apply"]), restarts
    every partition from (baseline, WAL) plus the reopened on-disk decision
    log — or, with [coordinator_kill], fails over only the coordinator via
    {!Coordinator.Remote.recover} while the partitions survive — and checks
    that no partition stays in doubt, that a logged Commit decision is
    never lost, that an unlogged one is presumed aborted and the
    transaction cleanly re-submitted, and that the merged database
    satisfies the TPC-C consistency conditions throughout. *)

type config = {
  params : Acc_tpcc.Params.t;
  partitions : int;
  seed : int;
  txns : int;
  remote_customer_rate : float;  (** elevated so short runs cross partitions *)
  remote_item_rate : float;
  hits_per_point : int;
  chaos_p : float;
  netfault : Acc_fault.Fault.Netfault.spec;
      (** message faults live on every coordinator↔participant connection
          (and the recovery-time Resolve path) for the whole run — the
          network does not heal because a process died *)
  coordinator_kill : bool;
      (** handle crashes at coordinator-side points ("dist.decide",
          "dist.decision.durable") by coordinator failover
          ({!Coordinator.Remote.recover}) instead of a full restart: the
          partitions' engines survive with their prepared branches' locks
          held until settlement *)
  verbose : bool;
}

val default_config : config
(** 4 warehouses over 2 partitions, elevated remote rates, no message
    faults, full-restart recovery. *)

type result = { r_label : string; r_crashes : int; r_errors : string list }

val failed : result -> bool

val sweep : ?config:config -> unit -> result list
(** Deterministic sweep: dry-run to count each dist.* point's passages
    (coverage failure if a point never trips), then crash at a spread of
    hits per point.  First result is the zero-crash baseline. *)

val sweep_matrix : ?config:config -> ?quick:bool -> unit -> result list
(** The chaos matrix: crash points × transport-fault kinds (none, drop,
    dup, delay, reorder, disconnect) × restart mode (full restart, and
    coordinator kill for coordinator-side points).  Each cell crashes at
    the point's first passage with that single-kind fault spec live on
    every connection.  [quick] trims to one fault kind per point (the
    per-push smoke slice); the nightly job runs the full product. *)

val chaos : ?config:config -> seed:int -> unit -> result
(** Probabilistic crashes at every registered point, re-armed with a derived
    seed after each recovery; [config.netfault] / [config.coordinator_kill]
    compose with it. *)

val pp_result : Format.formatter -> result -> unit
