(** Partitioned multicore TPC-C driver: N isolated partitions behind a
    two-phase-commit {!Coordinator}.  Single-partition transactions run
    unchanged on their home engine; cross-partition new_order/payment run as
    branch programs under 2PC, with compensation replay as the abort path. *)

type config = {
  seed : int;
  domains : int;
  partitions : int;
  duration : float;
  txns_per_domain : int option;
  think_mean : float;
  compute_between : float;
  params : Acc_tpcc.Params.t;
  acc_options : Acc_core.Runtime.options;
  lock_deadline : float option;
      (** per-request lock-wait budget on every partition engine: the
          backstop against cross-coordinator blocking that per-partition
          deadlock detectors cannot see *)
  transport : Transport.kind;
      (** how the coordinator reaches its participants (default loopback);
          [`Pipe] serializes each partition's requests through a handler
          domain, so lock waits inside a prepare delay that partition's
          other requests — the lock deadline is the liveness backstop *)
  netfault : Acc_fault.Fault.Netfault.spec;
      (** message faults injected on every coordinator↔participant stream
          (default none) *)
}

val default_config : config

type report = {
  transport : string;
  committed : int;
  single_committed : int;
  cross_committed : int;
  cross_aborted : int;
  compensations : int;
  cross_attempted : int;
  cross_fraction : float;
  throughput : float;
  elapsed : float;
  prepare_hold : Acc_util.Stats.Tally.t;
  violations : string list;  (** of the merged database *)
  partition_committed : int list;
}

val make_partitions :
  seed:int ->
  ?lock_deadline:float ->
  partitions:int ->
  Acc_tpcc.Params.t ->
  (Partition.t * Acc_parallel.Engine.t) list
(** Load each partition's warehouse range as an exact projection of the
    unpartitioned load and wrap it in its own parallel engine.  Callers own
    the engines ({!Acc_parallel.Engine.shutdown}). *)

val merged_db : Partition.t list -> Acc_relation.Database.t
(** Union of the partitions' databases (item table taken from the first
    partition only) — the view the consistency conditions are checked
    against: C1/C8 and C12 span partitions and do not hold of any single
    partition's database. *)

val run : config -> report
val pp_report : Format.formatter -> report -> unit
