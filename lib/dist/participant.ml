(* The participant half of 2PC: one per partition, owning the protocol
   state the coordinator's RPCs act on.

   [stage] is the same-process surrogate for shipping a branch program to
   the partition; the later [Prepare {gid}] RPC runs it.  Handlers are
   idempotent — the transport may duplicate any frame and the coordinator
   retries on timeout — so every answer is derived from (and recorded in)
   per-gid tables:

   - a duplicate Prepare returns the cached vote without re-running the
     branch;
   - a duplicate Decide finds the gid already applied and just re-Acks;
   - a Prepare that arrives *after* its Decide (a delay/reorder hold on
     the last Prepare retry, released by the Decide send) answers from
     the recorded decision without running the branch — re-running it
     would pin locks into a prepared state no later Decide releases.

   "dist.apply" is this module's crash point: the participant dying after
   the decision reached it but before the branch applied it.  The branch's
   WAL Prepare record is then still the last word on disk, so recovery
   reports it in doubt and the decision log resolves it — the same path as
   a decision that never arrived.

   [settle]/[settle_gid] is the participant side of recovery: ask the
   coordinator ([ask], usually a Resolve RPC with a durable-log fallback)
   for each in-doubt gid and apply what comes back.  A [None] answer
   leaves the branch blocked — presumed abort is the *coordinator's* call
   (it knows whether a decision could have been logged), never the
   participant's default. *)

module Runtime = Acc_core.Runtime
module Program = Acc_core.Program
module Fault = Acc_fault.Fault
module Trace = Acc_obs.Trace

let cp_apply = Fault.register "dist.apply"

type t = {
  part : Partition.t;
  options : Runtime.options option;
  stop : (unit -> bool) option;
  mu : Mutex.t;
  staged : (int, Program.instance) Hashtbl.t;
  prepared : (int, Runtime.prepared) Hashtbl.t;
  votes : (int, bool) Hashtbl.t;
  applied : (int, bool) Hashtbl.t;
}

let make ?options ?stop part =
  {
    part;
    options;
    stop;
    mu = Mutex.create ();
    staged = Hashtbl.create 64;
    prepared = Hashtbl.create 64;
    votes = Hashtbl.create 64;
    applied = Hashtbl.create 64;
  }

let partition t = t.part

let stage t ~gid inst =
  Mutex.lock t.mu;
  Hashtbl.replace t.staged gid inst;
  Mutex.unlock t.mu

let forget t ~gid =
  Mutex.lock t.mu;
  Hashtbl.remove t.staged gid;
  Mutex.unlock t.mu

let in_doubt t =
  Mutex.lock t.mu;
  let gids = Hashtbl.fold (fun gid _ acc -> gid :: acc) t.prepared [] in
  Mutex.unlock t.mu;
  List.sort compare gids

let max_gid t =
  Mutex.lock t.mu;
  let m = ref 0 in
  let see gid _ = if gid > !m then m := gid in
  Hashtbl.iter see t.staged;
  Hashtbl.iter see t.prepared;
  Hashtbl.iter see t.votes;
  Hashtbl.iter see t.applied;
  Mutex.unlock t.mu;
  !m

(* The branch itself runs outside [mu]: a prepare can block on locks for
   up to the lock deadline, and the tables must stay reachable meanwhile
   (per-connection call serialization already orders same-gid requests). *)
let handle_prepare t ~gid =
  Mutex.lock t.mu;
  let decided = Hashtbl.find_opt t.applied gid in
  let cached =
    match decided with
    | Some _ -> None
    | None -> Hashtbl.find_opt t.votes gid
  in
  let inst =
    match (decided, cached) with
    | Some _, _ | None, Some _ -> None
    | None, None -> (
        match Hashtbl.find_opt t.staged gid with
        | Some i ->
            Hashtbl.remove t.staged gid;
            Some i
        | None ->
            (* nothing staged: a Prepare for a transaction this partition
               never saw can only vote no *)
            Hashtbl.replace t.votes gid false;
            None)
  in
  Mutex.unlock t.mu;
  match (decided, cached, inst) with
  | Some commit, _, _ ->
      (* the decision already landed here: this Prepare lost a race with
         its own Decide.  Answer consistently with the decision and do
         NOT run the branch — apply is done with this gid, so a branch
         prepared now could never be committed or compensated *)
      Transport.Vote { gid; ok = commit }
  | None, Some ok, _ -> Transport.Vote { gid; ok }
  | None, None, None -> Transport.Vote { gid; ok = false }
  | None, None, Some i -> (
      match
        Runtime.prepare ?options:t.options ?stop:t.stop
          (Partition.engine t.part) i ~gid
      with
      | Ok p ->
          Mutex.lock t.mu;
          Hashtbl.replace t.prepared gid p;
          Hashtbl.replace t.votes gid true;
          Mutex.unlock t.mu;
          Transport.Vote { gid; ok = true }
      | Error _ ->
          Mutex.lock t.mu;
          Hashtbl.replace t.votes gid false;
          Mutex.unlock t.mu;
          Transport.Vote { gid; ok = false })

let apply t ~gid ~commit =
  let todo =
    Mutex.lock t.mu;
    let r =
      match Hashtbl.find_opt t.prepared gid with
      | Some p ->
          (* a prepared branch is always settled, even if [applied]
             already has the gid (a branch that slipped into prepared
             after the decision landed still holds its locks); the
             recorded decision wins over the caller's argument *)
          let commit =
            match Hashtbl.find_opt t.applied gid with
            | Some d -> d
            | None -> commit
          in
          Some (p, commit)
      | None ->
          (* decided but never prepared here (the branch failed before
             voting, or the Prepare never arrived): record so a late
             duplicate Prepare still answers consistently *)
          if not (Hashtbl.mem t.applied gid) then
            Hashtbl.replace t.applied gid commit;
          None
    in
    Mutex.unlock t.mu;
    r
  in
  match todo with
  | None -> ()
  | Some (p, commit) ->
      Fault.trip cp_apply;
      if commit then Runtime.commit_prepared p else Runtime.abort_prepared p;
      Mutex.lock t.mu;
      Hashtbl.remove t.prepared gid;
      Hashtbl.replace t.applied gid commit;
      Mutex.unlock t.mu

let handle t = function
  | Transport.Prepare { gid; _ } -> handle_prepare t ~gid
  | Transport.Decide { gid; commit } ->
      apply t ~gid ~commit;
      Transport.Ack { gid }
  | (Transport.Vote _ | Transport.Ack _ | Transport.Resolve _) as m ->
      invalid_arg
        ("Participant.handle: unexpected request " ^ Transport.msg_kind m)

let settle_gid t ~ask gid =
  Mutex.lock t.mu;
  let p = Hashtbl.find_opt t.prepared gid in
  Mutex.unlock t.mu;
  match p with
  | None -> true
  | Some p -> (
      match ask gid with
      | Some commit ->
          if Trace.enabled () then
            Trace.emit
              (Trace.Resolve { txn = Runtime.prepared_txn p; gid; commit });
          apply t ~gid ~commit;
          true
      | None -> false)

let settle t ~ask =
  List.fold_left
    (fun (ok, blocked) gid ->
      if settle_gid t ~ask gid then (ok + 1, blocked) else (ok, blocked + 1))
    (0, 0) (in_doubt t)
