(* The partitioned multicore TPC-C driver: N isolated partitions (each its
   own database, sharded lock table, WAL and executor) behind one
   two-phase-commit coordinator.  Single-partition transactions are routed
   straight to their home partition's engine and run exactly as on the
   single-node system; cross-partition new_orders and payments are split
   into branch programs ({!Acc_tpcc.Dist_txns}) and driven through
   prepare/decide/apply by the {!Coordinator}. *)

module Executor = Acc_txn.Executor
module Backoff = Acc_txn.Backoff
module Runtime = Acc_core.Runtime
module Engine = Acc_parallel.Engine
module Domain_pool = Acc_parallel.Domain_pool
module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Prng = Acc_util.Prng
module Metrics = Acc_util.Metrics
module Tally = Acc_util.Stats.Tally
module Txns = Acc_tpcc.Txns
module Dist_txns = Acc_tpcc.Dist_txns
module Load = Acc_tpcc.Load
module Params = Acc_tpcc.Params
module Schema = Acc_tpcc.Schema
module Random_gen = Acc_tpcc.Random_gen
module Consistency = Acc_tpcc.Consistency

type config = {
  seed : int;
  domains : int;
  partitions : int;
  duration : float;  (** wall-clock seconds (when [txns_per_domain] is [None]) *)
  txns_per_domain : int option;  (** fixed-count mode, for deterministic tests *)
  think_mean : float;
  compute_between : float;
  params : Params.t;
  acc_options : Runtime.options;
  lock_deadline : float option;
      (** per-request lock-wait budget on every partition engine: the
          backstop against cross-coordinator blocking the per-partition
          detectors cannot see *)
  transport : Transport.kind;
      (** how the coordinator reaches its participants: in-process loopback,
          or a socketpair with each partition's request loop on its own
          domain *)
  netfault : Acc_fault.Fault.Netfault.spec;
      (** message faults injected on every coordinator↔participant stream *)
}

let default_config =
  {
    seed = 7;
    domains = 2;
    partitions = 2;
    duration = 2.0;
    txns_per_domain = None;
    think_mean = 0.0;
    compute_between = 0.0;
    params = Params.default;
    acc_options = Runtime.default_options;
    lock_deadline = Some 1.0;
    transport = `Loopback;
    netfault = Acc_fault.Fault.Netfault.none;
  }

type report = {
  transport : string;  (** ["loopback"] | ["pipe"] — the bench matrix axis *)
  committed : int;  (** single-partition + cross-partition commits *)
  single_committed : int;
  cross_committed : int;
  cross_aborted : int;  (** coordinator aborts (forced 1% + failures) *)
  compensations : int;  (** single-partition compensated runs *)
  cross_attempted : int;
  cross_fraction : float;
      (** cross-partition transactions over all attempted transactions *)
  throughput : float;
  elapsed : float;
  prepare_hold : Tally.t;  (** per-transaction prepare-window hold, seconds *)
  violations : string list;  (** of the merged database *)
  partition_committed : int list;  (** per worker domain, not per partition *)
}

(* Build the partitions: each loads its warehouse range as an exact
   projection of the unpartitioned load (same seed, same PRNG draws), so the
   merged database of a quiesced system is comparable with a single-node
   run.  The item table is replicated on every partition; the merge keeps
   partition 0's copy. *)
let make_partitions ~seed ?lock_deadline ~partitions params =
  Params.validate params;
  let ranges = Partition.ranges ~warehouses:params.Params.warehouses ~partitions in
  List.mapi
    (fun id (lo, hi) ->
      let db = Load.populate ~only:(fun w -> lo <= w && w <= hi) ~seed params in
      let engine =
        Engine.create ?lock_deadline
          ~metrics_labels:[ ("partition", string_of_int id) ]
          ~sem:Dist_txns.semantics db
      in
      (* disjoint txn-id bands make every id in the trace globally unique,
         so the span layer can attribute spans to partitions by id alone *)
      Executor.set_next_txn (Engine.executor engine) (Partition.txn_base id + 1);
      (* the partition engines carry the same lock-event instrumentation as
         the single-node driver when a trace sink is live *)
      if Acc_obs.Trace.enabled () then
        Acc_parallel.Sharded_lock_table.set_observer (Engine.locks engine)
          (Some (Acc_obs.Lock_obs.observer ()));
      (Partition.make ~id ~lo ~hi (Engine.executor engine), engine))
    ranges

let merged_db parts =
  let db = Database.create () in
  Schema.create_all db;
  List.iteri
    (fun idx part ->
      let src = Executor.db (Partition.engine part) in
      List.iter
        (fun name ->
          if name <> "item" || idx = 0 then
            Table.iter
              (fun _ row -> Table.insert (Database.table db name) (Array.copy row))
              (Database.table src name))
        Schema.table_names)
    parts;
  db

let run cfg =
  if cfg.domains < 1 then invalid_arg "Dist_driver.run: domains must be >= 1";
  let pairs =
    make_partitions ~seed:cfg.seed ?lock_deadline:cfg.lock_deadline
      ~partitions:cfg.partitions cfg.params
  in
  let parts = Array.of_list (List.map fst pairs) in
  let engines = List.map snd pairs in
  let coord = Coordinator.create parts in
  let part_of w = Partition.id (Coordinator.partition_of coord w) in
  let started = Unix.gettimeofday () in
  let deadline = started +. cfg.duration in
  let stop () = cfg.txns_per_domain = None && Unix.gettimeofday () >= deadline in
  (* every cross transaction goes over the RPC transport — loopback costs
     one encode/decode round-trip per message, pipe adds the socketpair and
     the per-partition handler domain *)
  let remote =
    Coordinator.Remote.make ~options:cfg.acc_options ~stop
      ~transport:cfg.transport ~faults:cfg.netfault coord
  in
  let committed = Metrics.Counter.create () in
  let single_committed = Metrics.Counter.create () in
  let compensations = Metrics.Counter.create () in
  let cross_attempted = Metrics.Counter.create () in
  let attempted = Metrics.Counter.create () in
  let base_env =
    {
      (Txns.default_env ~seed:((cfg.seed * 31) + 1) cfg.params) with
      Txns.pace =
        (fun () -> if cfg.compute_between > 0.0 then Unix.sleepf cfg.compute_between);
    }
  in
  let envs =
    Array.init cfg.domains (fun _ ->
        { base_env with Txns.gen = Random_gen.split base_env.Txns.gen })
  in
  let worker i =
    let env = envs.(i) in
    let jitter = Backoff.Jitter.create ~seed:((cfg.seed * 7919) + i) () in
    let think_g = Prng.create ~seed:((cfg.seed * 1009) + i) in
    let mine = ref 0 in
    let budget = ref (match cfg.txns_per_domain with Some n -> n | None -> max_int) in
    let time_ok () = cfg.txns_per_domain <> None || Unix.gettimeofday () < deadline in
    while !budget > 0 && time_ok () do
      decr budget;
      if cfg.think_mean > 0.0 then
        Unix.sleepf (Prng.exponential think_g ~mean:cfg.think_mean);
      let input = Txns.gen_input env in
      Metrics.Counter.incr attempted;
      match Dist_txns.partitions_of_input ~part_of input with
      | [ pid ] ->
          let home = parts.(pid) in
          let outcome =
            Engine.run_txn ~jitter (fun () ->
                Txns.run_acc ~options:cfg.acc_options ~stop (Partition.engine home)
                  env input)
          in
          (match outcome with
          | Runtime.Committed ->
              Metrics.Counter.incr committed;
              Metrics.Counter.incr single_committed;
              incr mine
          | Runtime.Compensated _ -> Metrics.Counter.incr compensations)
      | _ ->
          Metrics.Counter.incr cross_attempted;
          let branches =
            List.map
              (fun (pid, inst) -> (parts.(pid), inst))
              (Dist_txns.branches env ~part_of input)
          in
          let outcome =
            Engine.run_txn ~jitter (fun () ->
                Coordinator.Remote.run_cross remote branches)
          in
          (match outcome with
          | Coordinator.Committed ->
              Metrics.Counter.incr committed;
              incr mine
          | Coordinator.Aborted -> ())
    done;
    !mine
  in
  let per_domain = Domain_pool.run ~domains:cfg.domains worker in
  let elapsed = Unix.gettimeofday () -. started in
  Coordinator.Remote.close remote;
  List.iter Engine.shutdown engines;
  let n_attempted = Metrics.Counter.get attempted in
  let n_committed = Metrics.Counter.get committed in
  {
    transport = Transport.kind_name cfg.transport;
    committed = n_committed;
    single_committed = Metrics.Counter.get single_committed;
    cross_committed = Coordinator.cross_committed coord;
    cross_aborted = Coordinator.cross_aborted coord;
    compensations = Metrics.Counter.get compensations;
    cross_attempted = Metrics.Counter.get cross_attempted;
    cross_fraction =
      (if n_attempted > 0 then
         float_of_int (Metrics.Counter.get cross_attempted) /. float_of_int n_attempted
       else 0.0);
    throughput = (if elapsed > 0.0 then float_of_int n_committed /. elapsed else 0.0);
    elapsed;
    prepare_hold = Coordinator.prepare_hold_snapshot coord;
    violations = Consistency.check (merged_db (Array.to_list parts));
    partition_committed = per_domain;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>transport            %s@,committed            %d@,\
     throughput           %.1f txn/s@,\
     single-partition     %d committed, %d compensated@,\
     cross-partition      %d committed, %d aborted (%d attempted)@,\
     cross fraction       %.3f@,\
     prepare hold (s)     mean %.6f p95 %.6f (%d samples)@,\
     per-domain committed %s@,consistency          %s@]"
    r.transport r.committed r.throughput r.single_committed r.compensations r.cross_committed
    r.cross_aborted r.cross_attempted r.cross_fraction
    (Tally.mean r.prepare_hold)
    (Tally.percentile r.prepare_hold 0.95)
    (Tally.count r.prepare_hold)
    (String.concat ", " (List.map string_of_int r.partition_committed))
    (match r.violations with
    | [] -> "OK"
    | v -> Printf.sprintf "%d VIOLATION(S)" (List.length v))
