(** RPC transport between the 2PC coordinator and its participants.

    Wire messages are length-prefixed frames behind the same magic+version
    header discipline as the WAL ({!Acc_wal.Log.Header}): an incompatible
    build is rejected before a single payload byte is interpreted.

    Two implementations share one {!call} interface:

    - {!loopback} runs the handler synchronously in the caller — frames
      still round-trip through {!encode}/{!decode}, and no wall clock is
      consulted, so the crash/chaos harness stays deterministic (a
      "timeout" is a reply the fault layer did not deliver);
    - {!pipe} is a [Unix.socketpair] with the partition's request loop on
      a dedicated domain; {!call} [select]s for the matching reply until
      its deadline.

    The injectable fault layer ({!Acc_fault.Fault.Netfault}) sits on the
    send side of both directions with independent PRNG streams, may drop,
    duplicate, delay, reorder or flap each frame, and emits a
    [Trace.Net_fault] event per injection.  Held-back frames are released
    by later sends — retries flush the network — never by a timer. *)

type msg =
  | Prepare of { gid : int; part : int }
      (** run the staged branch for [gid]; answer {!Vote} *)
  | Vote of { gid : int; ok : bool }
  | Decide of { gid : int; commit : bool }  (** apply the decision; answer {!Ack} *)
  | Ack of { gid : int }
  | Resolve of { gid : int }
      (** participant → coordinator: what happened to [gid]?  Answered
          with a {!Decide} (presumed abort when the log has no entry). *)

val msg_kind : msg -> string
(** ["prepare"] / ["vote"] / ["decide"] / ["ack"] / ["resolve"] — the [ops]
    vocabulary of {!Acc_fault.Fault.Netfault.spec}. *)

val gid_of : msg -> int

(** {1 Framing} *)

type frame = { seq : int; msg : msg }
(** [seq] is the per-connection call number; replies echo the request's
    [seq], which is how a caller tells its reply from a stale duplicate. *)

val magic : string
val version : int

val encode : frame -> string

val decode : string -> frame
(** Raises [Failure] (with the {!Acc_wal.Log.Header.check} message
    vocabulary) on a short, foreign, or version-mismatched frame. *)

(** {1 Connections} *)

type kind = [ `Loopback | `Pipe ]

val kind_name : kind -> string
val kind_of_string : string -> kind
(** Raises [Invalid_argument] on anything but ["loopback"] / ["pipe"]. *)

type t

val loopback : ?faults:Acc_fault.Fault.Netfault.spec -> (msg -> msg) -> t
(** Synchronous in-process connection.  A handler exception (notably a
    simulated {!Acc_fault.Fault.Crash}) propagates to the caller of
    {!call}. *)

val pipe : ?faults:Acc_fault.Fault.Netfault.spec -> (msg -> msg) -> t
(** Socketpair connection with the handler loop on a dedicated domain.  A
    handler exception drops the request — the caller times out and
    retries, which is how a remote participant death looks from here. *)

val kind : t -> kind

val call : ?deadline:float -> t -> msg -> msg option
(** One RPC: send the request, wait for the reply with the matching
    sequence number.  [None] is a timeout — on loopback, a reply the fault
    layer withheld; on pipe, [deadline] seconds (default 1.0) elapsing.
    Calls on one connection are serialized by an internal mutex. *)

val close : t -> unit
(** Close the connection (joins the pipe's handler domain).  Subsequent
    {!call}s return [None]. *)
