(** Two-phase commit coordinator for partitioned ACC.

    Single-partition transactions never come here — they run on their home
    partition's executor exactly as on a single-node system.  A
    cross-partition transaction is decomposed into one branch (an ordinary
    {!Acc_core.Program.instance}) per touched partition; {!run_cross}
    prepares the branches in ascending partition-id order, records the
    commit/abort decision in the {e decision log} (durability point,
    presumed abort: no entry means abort), and applies it to every prepared
    branch — abort runs the branch's compensating step, ACC's logical undo.

    Crash points, registered at module initialization:
    - ["dist.prepare"] — branch vote logged, locks held (in the executor);
    - ["dist.decide"] — decision chosen but not durable (recovery presumes
      abort);
    - ["dist.decision.durable"] — decision durable, participants not yet
      told (recovery resolves from the decision log). *)

type decision = Commit | Abort

(** The coordinator's durable state: gid → decision.  {!create} is the
    in-memory variant (protocol tests); {!open_file} is the real thing —
    an append-only on-disk log of fixed records behind the WAL's
    magic+version header discipline, fsynced per {!record}, reloaded (and
    its torn tail truncated) at open.  Losing it is losing the commit
    record; a coordinator failover starts by reopening it. *)
module Decision_log : sig
  type t

  val create : unit -> t
  (** In-memory log: {!record} is not durable. *)

  val open_file : string -> t
  (** Open (creating if absent) a file-backed log and load every complete
      record; a torn tail from a crash mid-append is truncated away.
      Raises [Failure] ({!Acc_wal.Log.Header.check}'s vocabulary) if the
      file is not a decision log or is from an unreadable version. *)

  val path : t -> string option
  (** The backing file, [None] for an in-memory log. *)

  val record : t -> gid:int -> decision -> unit
  (** Append and fsync (file-backed): when this returns, the decision
      survives a coordinator death.  Re-recording an identical decision is
      a no-op, so retried/failed-over coordinators do not grow the file. *)

  val lookup : t -> gid:int -> decision option
  val size : t -> int

  val max_gid : t -> int
  (** Largest recorded gid, 0 when empty. *)

  val close : t -> unit
end

type t

val create : ?log:Decision_log.t -> ?first_gid:int -> Partition.t array -> t
(** [create parts] builds a coordinator over the partitions (sorted by id).
    Pass [?log] to adopt a decision log that survived a crash, and
    [?first_gid] (one past the largest gid any surviving WAL Prepare record
    carries) so restarted gids never collide with stale in-doubt branches;
    the counter always starts above the log's own watermark.  Raises
    [Invalid_argument] on an empty partition array. *)

val partitions : t -> Partition.t array
val decision_log : t -> Decision_log.t

val partition_of : t -> int -> Partition.t
(** Home partition of a warehouse.  Raises [Invalid_argument] if no
    partition owns it. *)

val decision_of : t -> gid:int -> decision option
(** Logged decision for a global transaction, if any ([None] = presumed
    abort once the transaction is in doubt). *)

type outcome = Committed | Aborted

val run_cross :
  ?options:Acc_core.Runtime.options ->
  ?stop:(unit -> bool) ->
  t ->
  (Partition.t * Acc_core.Program.instance) list ->
  outcome
(** Drive one cross-partition transaction: prepare every branch (ascending
    partition id — a global order, so coordinators cannot deadlock against
    each other on partitions), decide, log, apply.  If any branch fails
    before voting it has already rolled itself back and the rest get the
    abort decision.  Raises [Invalid_argument] on an empty branch list. *)

val cross_committed : t -> int
val cross_aborted : t -> int

val prepare_hold_snapshot : t -> Acc_util.Stats.Tally.t
(** Snapshot of per-transaction prepare-window hold times (seconds): from
    the first branch's first step to the decision applied. *)

val resolve_in_doubt :
  Decision_log.t -> Acc_txn.Executor.t -> Acc_wal.Recovery.report -> int
(** Post-recovery resolution for one partition: each in-doubt branch in the
    report is committed if the log says [Commit], compensated otherwise
    (explicit [Abort] or presumed abort).  Returns the number resolved. *)

val resolve_in_doubt_via :
  ask:(int -> bool option) ->
  Acc_txn.Executor.t ->
  Acc_wal.Recovery.report ->
  int * int
(** Like {!resolve_in_doubt}, but the decision comes from [ask] (normally
    a Resolve RPC against the coordinator, with the durable log as
    fallback).  [ask gid = None] leaves that branch blocked — whether
    presumed abort applies is the caller's judgment, not this function's.
    Returns [(resolved, still_blocked)]. *)

(** The coordinator driven over the RPC transport ({!Transport}): one
    {!Participant} and one connection per partition, plus a resolver
    connection answering [Resolve] requests from whichever core currently
    owns the decision log.

    RPC timeouts retry with decorrelated jitter ({!Acc_txn.Backoff});
    participant handlers are idempotent, so the duplicates retries (or the
    fault layer) produce are safe.  Once a decision is durable, a
    participant the wire failed is settled from the log before
    {!Remote.run_cross} returns — an acked commit cannot be lost to a
    transport fault. *)
module Remote : sig
  type coordinator := t
  type t

  val make :
    ?options:Acc_core.Runtime.options ->
    ?stop:(unit -> bool) ->
    ?retries:int ->
    ?transport:Transport.kind ->
    ?faults:Acc_fault.Fault.Netfault.spec ->
    ?prepare_deadline:float ->
    ?decide_deadline:float ->
    coordinator ->
    t
  (** Wrap a coordinator core: one participant + connection per partition
      (pipe connections each get a dedicated handler domain).  [retries]
      (default 4) bounds re-sends per RPC; [prepare_deadline] (default 5s,
      the branch runs inside it) and [decide_deadline] (default 0.2s)
      bound each wait on the pipe transport — loopback never waits. *)

  val core : t -> coordinator
  (** The current core ({!recover} swaps it). *)

  val participants : t -> Participant.t array
  val transport : t -> Transport.kind

  val run_cross :
    t -> (Partition.t * Acc_core.Program.instance) list -> outcome
  (** {!run_cross} driven over the transport: stage each branch, Prepare
      (a timeout or no-vote aborts), make the decision durable, Decide,
      and settle any branch the wire failed from the durable log.  The
      ["dist.decide"] / ["dist.decision.durable"] crash points fire on the
      coordinator side, so a [Fault.Crash] from here models the
      coordinator dying with participants' branches in doubt — hand the
      wreckage to {!recover}. *)

  val recover : ?first_gid:int -> t -> int
  (** Coordinator failover after the core died: reopen the on-disk
      decision log, restart the gid counter above the log's watermark,
      every surviving participant's largest seen gid, and [first_gid]
      (pass the WAL prepare-record watermark), swap the new core in, and
      resolve every participant's in-doubt branches over the transport
      (Resolve RPC, durable-log fallback; no logged decision means the old
      coordinator died before its durability point, so presumed abort is
      sound).  Returns the number of branches resolved.  Raises
      [Invalid_argument] if the decision log is in-memory — there is
      nothing to fail over to. *)

  val close : t -> unit
  (** Close every connection (joining pipe handler domains). *)
end
