(** Two-phase commit coordinator for partitioned ACC.

    Single-partition transactions never come here — they run on their home
    partition's executor exactly as on a single-node system.  A
    cross-partition transaction is decomposed into one branch (an ordinary
    {!Acc_core.Program.instance}) per touched partition; {!run_cross}
    prepares the branches in ascending partition-id order, records the
    commit/abort decision in the {e decision log} (durability point,
    presumed abort: no entry means abort), and applies it to every prepared
    branch — abort runs the branch's compensating step, ACC's logical undo.

    Crash points, registered at module initialization:
    - ["dist.prepare"] — branch vote logged, locks held (in the executor);
    - ["dist.decide"] — decision chosen but not durable (recovery presumes
      abort);
    - ["dist.decision.durable"] — decision durable, participants not yet
      told (recovery resolves from the decision log). *)

type decision = Commit | Abort

(** The coordinator's durable state: gid → decision.  Keep it across a
    simulated crash and pass it back to {!create} / {!resolve_in_doubt} —
    losing it is losing the commit record. *)
module Decision_log : sig
  type t

  val create : unit -> t
  val record : t -> gid:int -> decision -> unit
  val lookup : t -> gid:int -> decision option
  val size : t -> int

  val max_gid : t -> int
  (** Largest recorded gid, 0 when empty. *)
end

type t

val create : ?log:Decision_log.t -> ?first_gid:int -> Partition.t array -> t
(** [create parts] builds a coordinator over the partitions (sorted by id).
    Pass [?log] to adopt a decision log that survived a crash, and
    [?first_gid] (one past the largest gid any surviving WAL Prepare record
    carries) so restarted gids never collide with stale in-doubt branches;
    the counter always starts above the log's own watermark.  Raises
    [Invalid_argument] on an empty partition array. *)

val partitions : t -> Partition.t array
val decision_log : t -> Decision_log.t

val partition_of : t -> int -> Partition.t
(** Home partition of a warehouse.  Raises [Invalid_argument] if no
    partition owns it. *)

val decision_of : t -> gid:int -> decision option
(** Logged decision for a global transaction, if any ([None] = presumed
    abort once the transaction is in doubt). *)

type outcome = Committed | Aborted

val run_cross :
  ?options:Acc_core.Runtime.options ->
  ?stop:(unit -> bool) ->
  t ->
  (Partition.t * Acc_core.Program.instance) list ->
  outcome
(** Drive one cross-partition transaction: prepare every branch (ascending
    partition id — a global order, so coordinators cannot deadlock against
    each other on partitions), decide, log, apply.  If any branch fails
    before voting it has already rolled itself back and the rest get the
    abort decision.  Raises [Invalid_argument] on an empty branch list. *)

val cross_committed : t -> int
val cross_aborted : t -> int

val prepare_hold_snapshot : t -> Acc_util.Stats.Tally.t
(** Snapshot of per-transaction prepare-window hold times (seconds): from
    the first branch's first step to the decision applied. *)

val resolve_in_doubt :
  Decision_log.t -> Acc_txn.Executor.t -> Acc_wal.Recovery.report -> int
(** Post-recovery resolution for one partition: each in-doubt branch in the
    report is committed if the log says [Commit], compensated otherwise
    (explicit [Abort] or presumed abort).  Returns the number resolved. *)
