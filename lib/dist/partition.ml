(* A partition is one isolated ACC instance owning a contiguous warehouse
   range: its own database, lock backend, WAL, and executor.  Nothing in
   this module shares state with any other partition — the only cross-
   partition channel is the coordinator's two-phase commit. *)

type t = {
  id : int;
  lo : int;
  hi : int;
  eng : Acc_txn.Executor.t;
}

let make ~id ~lo ~hi eng =
  if id < 0 then invalid_arg "Partition.make: negative id";
  if lo < 1 || hi < lo then invalid_arg "Partition.make: bad warehouse range";
  { id; lo; hi; eng }

let id t = t.id
let engine t = t.eng

(* Disjoint txn-id bands: partition [p]'s executor counts from [p * stride],
   so any txn id seen in a distributed trace maps back to its partition by
   division alone — no per-event partition field needed.  16M ids per
   partition is ~5 orders of magnitude above any bench run; on overflow the
   ids would bleed into the next band and only the trace attribution (not
   correctness) would suffer. *)
let txn_stride = 1 lsl 24
let txn_base id = id * txn_stride
let partition_of_txn txn = if txn < 0 then 0 else txn / txn_stride
let range t = (t.lo, t.hi)
let owns t w = t.lo <= w && w <= t.hi

(* Contiguous near-equal split of warehouses 1..W over n partitions: the
   first [W mod n] partitions take one extra warehouse. *)
let ranges ~warehouses ~partitions =
  if partitions < 1 then invalid_arg "Partition.ranges: partitions < 1";
  if warehouses < partitions then
    invalid_arg "Partition.ranges: fewer warehouses than partitions";
  let base = warehouses / partitions and extra = warehouses mod partitions in
  let rec go i lo acc =
    if i = partitions then List.rev acc
    else
      let width = base + if i < extra then 1 else 0 in
      let hi = lo + width - 1 in
      go (i + 1) (hi + 1) ((lo, hi) :: acc)
  in
  go 0 1 []
