(* Crash-restart harness for the partitioned system: the no-lost-decision
   oracle.

   Sequential single-fiber execution (one transaction per {!Schedule.run}),
   N partitions, one coordinator driven over the loopback transport (so the
   whole protocol — framing, fault layer, retries, idempotent handlers —
   is under test, while execution stays deterministic: loopback consults no
   wall clock).  The decision log is file-backed; "durable" means the bytes
   are fsynced.  A crash discards every partition's engine un-cleaned-up;
   restart sees each partition's (baseline snapshot, WAL) and the
   coordinator's on-disk decision log — the durable state a real deployment
   would have.  After every crash the harness checks:

   - recovery leaves {e no} partition in doubt: every prepared branch is
     resolved — over the transport (a Resolve RPC against the reopened
     decision log, with a direct log read as the liveness fallback when the
     fault layer eats the retries), logged Commit finishes it, logged Abort
     or no entry (presumed abort) compensates it — and re-deriving the
     partition from (snapshot, resolution log) confirms zero in-doubt and
     zero pending;
   - a cross transaction whose Commit decision made the log before the
     crash is durable: it is not re-submitted, and the merged database must
     account for its effects (the consistency conditions do exactly that);
   - one with no logged Commit is gone: it is re-submitted as a fresh global
     transaction with a fresh gid (the rebuilt coordinator restarts its gid
     counter above the watermark of every surviving gid);
   - the merged database satisfies all twelve TPC-C consistency conditions
     at the end.  Per-partition checks would be wrong: C1/C8 (history) and
     C12 (stock vs. remote order lines) only hold of the union.

   Two restart modes.  A {e full restart} (the default) loses every
   process: partitions recover from (baseline, WAL), the coordinator from
   its on-disk log.  With [coordinator_kill] set, a crash at a
   coordinator-side point ("dist.decide" / "dist.decision.durable") kills
   {e only} the coordinator: the partitions' engines survive with their
   prepared branches still holding locks, and {!Coordinator.Remote.recover}
   fails over — reopens the log, restarts the gid counter above every
   survivor, and settles the in-doubt branches over the transport.
   Presumed abort is sound there precisely because the old coordinator died
   before its durability point.

   Crash faults are disarmed for the duration of recovery itself (a
   restarted process boots with no fault injector armed); the message-fault
   layer stays live throughout — the network does not heal because a
   process died. *)

module Fault = Acc_fault.Fault
module Netfault = Fault.Netfault
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Database = Acc_relation.Database
module Lock_service = Acc_lock.Lock_service
module Log = Acc_wal.Log
module Record = Acc_wal.Record
module Recovery = Acc_wal.Recovery
module Replay = Acc_core.Replay
module Runtime = Acc_core.Runtime
module Txns = Acc_tpcc.Txns
module Dist_txns = Acc_tpcc.Dist_txns
module Load = Acc_tpcc.Load
module Params = Acc_tpcc.Params
module Consistency = Acc_tpcc.Consistency

(* force linkage: the branch compensation handlers register themselves at
   Recovery_comp's module-initialization time *)
let _force_handler_registration = Acc_tpcc.Recovery_comp.complete

type config = {
  params : Params.t;
  partitions : int;
  seed : int;
  txns : int;
  remote_customer_rate : float;
  remote_item_rate : float;
  hits_per_point : int;
  chaos_p : float;
  netfault : Netfault.spec;
  coordinator_kill : bool;
  verbose : bool;
}

let default_config =
  {
    params = { Params.default with Params.warehouses = 4 };
    partitions = 2;
    seed = 7;
    txns = 40;
    (* elevated well past the spec's 15%/1% so a short run crosses
       partitions often enough to trip every dist.* point repeatedly *)
    remote_customer_rate = 0.5;
    remote_item_rate = 0.2;
    hits_per_point = 3;
    chaos_p = 0.01;
    netfault = Netfault.none;
    coordinator_kill = false;
    verbose = false;
  }

type result = { r_label : string; r_crashes : int; r_errors : string list }

let failed r = r.r_errors <> []

let say cfg fmt =
  if cfg.verbose then Printf.printf (fmt ^^ "\n%!") else Printf.ifprintf stdout fmt

let err errs label fmt =
  Printf.ksprintf (fun msg -> errs := (label ^ ": " ^ msg) :: !errs) fmt

(* ------------------------------------------------------------------ *)
(* One simulated deployment. *)

type run = {
  cfg : config;
  inputs : Txns.input array;
  env : Txns.env;
  ranges : (int * int) array;
  parts : Partition.t array;  (* rebuilt in place on restart *)
  baselines : Database.t array;
  dlog_path : string;  (* durable: the file survives every crash *)
  mutable remote : Coordinator.Remote.t;
}

let coord r = Coordinator.Remote.core r.remote
let dlog r = Coordinator.decision_log (coord r)

let harness_env cfg =
  {
    (Txns.default_env ~seed:cfg.seed cfg.params) with
    Txns.remote_customer_rate = cfg.remote_customer_rate;
    remote_item_rate = cfg.remote_item_rate;
  }

let gen_inputs cfg =
  let env = harness_env cfg in
  Array.init cfg.txns (fun _ -> Txns.gen_input env)

let make_remote cfg core =
  Coordinator.Remote.make ~transport:`Loopback ~faults:cfg.netfault core

let fresh cfg ~inputs =
  Txns.reset_history_seq ();
  let ranges =
    Array.of_list
      (Partition.ranges ~warehouses:cfg.params.Params.warehouses
         ~partitions:cfg.partitions)
  in
  let baselines = Array.make (Array.length ranges) (Database.create ()) in
  let parts =
    Array.mapi
      (fun id (lo, hi) ->
        let db = Load.populate ~only:(fun w -> lo <= w && w <= hi) ~seed:cfg.seed cfg.params in
        baselines.(id) <- Database.copy db;
        Partition.make ~id ~lo ~hi (Executor.create ~sem:Dist_txns.semantics db))
      ranges
  in
  let dlog_path = Filename.temp_file "acc_decision" ".log" in
  let dlog = Coordinator.Decision_log.open_file dlog_path in
  {
    cfg;
    inputs;
    env = harness_env cfg;
    ranges;
    parts;
    baselines;
    dlog_path;
    remote = make_remote cfg (Coordinator.create ~log:dlog parts);
  }

let teardown r =
  Coordinator.Remote.close r.remote;
  Coordinator.Decision_log.close (dlog r);
  try Sys.remove r.dlog_path with Sys_error _ -> ()

let part_of r w = Partition.id (Coordinator.partition_of (coord r) w)

exception
  Crashed of {
    point : string;
    hit : int;
    at : int;
    start_lsns : Log.lsn array;
    gid_before : int;
  }

(* Execute inputs [from ..], one transaction per scheduler run. *)
let exec_from r ~from =
  let n = Array.length r.inputs in
  let i = ref from in
  while !i < n do
    let input = r.inputs.(!i) in
    let start_lsns =
      Array.map (fun p -> Log.length (Executor.log (Partition.engine p))) r.parts
    in
    let gid_before = Coordinator.Decision_log.max_gid (dlog r) in
    (try
       match Dist_txns.partitions_of_input ~part_of:(part_of r) input with
       | [ pid ] ->
           let eng = Partition.engine r.parts.(pid) in
           Schedule.run eng [ (fun () -> ignore (Txns.run_acc eng r.env input)) ]
       | _ ->
           let branches =
             List.map
               (fun (pid, inst) -> (r.parts.(pid), inst))
               (Dist_txns.branches r.env ~part_of:(part_of r) input)
           in
           let home = Partition.engine (fst (List.hd branches)) in
           Schedule.run home
             [ (fun () ->
                 ignore (Coordinator.Remote.run_cross r.remote branches)) ]
     with Fault.Crash { point; hit } ->
       raise (Crashed { point; hit; at = !i; start_lsns; gid_before }));
    incr i
  done

(* Was input [at]'s work durable when the crash hit?  Single-partition: a
   Commit record in its home-log suffix.  Cross-partition: a Commit decision
   logged for a gid drawn after [gid_before] — the decision log is the
   commit point; everything after it is recovery's responsibility. *)
let durably_committed r ~input ~start_lsns ~gid_before =
  match Dist_txns.partitions_of_input ~part_of:(part_of r) input with
  | [ pid ] ->
      let log = Executor.log (Partition.engine r.parts.(pid)) in
      List.exists
        (function Record.Commit _ -> true | _ -> false)
        (Log.appended_since log start_lsns.(pid))
  | _ ->
      let g = Coordinator.Decision_log.max_gid (dlog r) in
      g > gid_before
      && Coordinator.Decision_log.lookup (dlog r) ~gid:g = Some Coordinator.Commit

(* Resolution decisions travel over a (fault-wrapped) Resolve connection
   against the given log, exactly as a restarted participant would ask a
   recovered coordinator; the direct log read is the liveness fallback when
   the fault layer eats every retry, applying the same presumed-abort rule
   the resolver itself does. *)
let transport_ask cfg log =
  let conn =
    Transport.loopback ~faults:cfg.netfault (function
      | Transport.Resolve { gid } ->
          Transport.Decide
            { gid; commit = Coordinator.Decision_log.lookup log ~gid = Some Coordinator.Commit }
      | m ->
          invalid_arg
            ("Dist_harness resolver: unexpected request " ^ Transport.msg_kind m))
  in
  fun gid ->
    let rec go attempt =
      if attempt > 5 then
        Some (Coordinator.Decision_log.lookup log ~gid = Some Coordinator.Commit)
      else
        match Transport.call conn (Transport.Resolve { gid }) with
        | Some (Transport.Decide { commit; _ }) -> Some commit
        | Some _ | None -> go (attempt + 1)
    in
    go 1

(* Recover one partition: full-log replay from its baseline, decision
   resolution of the in-doubt branches over the transport, compensation
   replay of the pending ones, and the re-derivation oracle.  Returns the
   recovered engine and the largest gid seen in doubt. *)
let recover_partition errs label r ~fresh_log idx =
  let part = r.parts.(idx) in
  let records = Log.to_list (Executor.log (Partition.engine part)) in
  let rep = Recovery.recover ~baseline:r.baselines.(idx) records in
  (* recovery is a pure function of (baseline, log) *)
  let again = Recovery.recover ~baseline:r.baselines.(idx) records in
  if not (Database.equal rep.Recovery.db again.Recovery.db) then
    err errs label "partition %d: double WAL replay diverged" idx;
  let max_doubt_gid =
    List.fold_left
      (fun m (d : Recovery.in_doubt) -> max m d.Recovery.i_gid)
      0 rep.Recovery.in_doubt
  in
  let base2 = Database.copy rep.Recovery.db in
  let eng' = Executor.create ~sem:Dist_txns.semantics rep.Recovery.db in
  let resolved, blocked =
    Coordinator.resolve_in_doubt_via ~ask:(transport_ask r.cfg fresh_log) eng' rep
  in
  if blocked > 0 then
    err errs label "partition %d: %d in-doubt branches left blocked" idx blocked;
  if resolved <> List.length rep.Recovery.in_doubt then
    err errs label "partition %d: %d in-doubt branches, %d resolved" idx
      (List.length rep.Recovery.in_doubt)
      resolved;
  ignore (Replay.replay_pending eng' rep);
  (* the oracle: re-deriving the partition from (post-recovery snapshot,
     resolution log) must show nothing in doubt and nothing pending — a
     second crash right here would find a fully decided partition *)
  let rep' = Recovery.recover ~baseline:base2 (Log.to_list (Executor.log eng')) in
  if rep'.Recovery.in_doubt <> [] then
    err errs label "partition %d: %d branches STILL in doubt after resolution" idx
      (List.length rep'.Recovery.in_doubt);
  if rep'.Recovery.pending <> [] then
    err errs label "partition %d: %d compensations survive replay" idx
      (List.length rep'.Recovery.pending);
  if not (Database.equal rep'.Recovery.db (Executor.db eng')) then
    err errs label "partition %d: re-recovery diverges from the live state" idx;
  let locks = Executor.lock_service eng' in
  if Lock_service.lock_count locks <> 0 then
    err errs label "partition %d: %d dangling locks after resolution" idx
      (Lock_service.lock_count locks);
  (Executor.db eng', max_doubt_gid)

let merged r = Dist_driver.merged_db (Array.to_list r.parts)

let check_consistency errs label r =
  List.iter (fun c -> err errs label "consistency: %s" c) (Consistency.check (merged r))

(* Full restart: crash → recover every partition → reopen the on-disk
   decision log and rebuild coordinator + transport over it, gid counter
   above every surviving gid.  Returns the input index to resume from. *)
let recover_crash errs label r ~at ~start_lsns ~gid_before =
  let input = r.inputs.(at) in
  let committed = durably_committed r ~input ~start_lsns ~gid_before in
  (* the crashed coordinator's fd goes down with it; recovery reads the
     file back — load-time recovery is part of what is under test *)
  Coordinator.Remote.close r.remote;
  Coordinator.Decision_log.close (dlog r);
  let fresh_log = Coordinator.Decision_log.open_file r.dlog_path in
  let max_gid = ref 0 in
  Array.iteri
    (fun idx _ ->
      let db, doubt_gid = recover_partition errs label r ~fresh_log idx in
      max_gid := max !max_gid doubt_gid;
      let lo, hi = r.ranges.(idx) in
      r.baselines.(idx) <- Database.copy db;
      r.parts.(idx) <-
        Partition.make ~id:idx ~lo ~hi (Executor.create ~sem:Dist_txns.semantics db))
    r.parts;
  r.remote <-
    make_remote r.cfg
      (Coordinator.create ~log:fresh_log ~first_gid:(!max_gid + 1) r.parts);
  (* the system is quiescent right after recovery (the crashed transaction
     was either finished by resolution or wholly undone), so the merged
     database must already be consistent here, not only at the end *)
  check_consistency errs (label ^ Printf.sprintf "[post-crash txn %d]" at) r;
  if committed then at + 1 else at

(* Coordinator kill: only the coordinator process dies.  The partitions'
   engines survive — prepared branches still hold their until-commit and
   compensation locks — and {!Coordinator.Remote.recover} fails over:
   reopen the log, restart the gid counter above every survivor, settle the
   in-doubt branches over the transport.  No WAL replay happens, so this is
   the pure failover path. *)
let recover_kill errs label r ~at ~start_lsns ~gid_before =
  let input = r.inputs.(at) in
  let committed = durably_committed r ~input ~start_lsns ~gid_before in
  (match Coordinator.Remote.recover r.remote with
  | _resolved -> ()
  | exception e ->
      err errs label "failover raised %s" (Printexc.to_string e));
  Array.iteri
    (fun idx p ->
      let locks = Executor.lock_service (Partition.engine p) in
      if Lock_service.lock_count locks <> 0 then
        err errs label "partition %d: %d locks survive failover settlement" idx
          (Lock_service.lock_count locks))
    r.parts;
  check_consistency errs (label ^ Printf.sprintf "[post-failover txn %d]" at) r;
  if committed then at + 1 else at

let coordinator_point = function
  | "dist.decide" | "dist.decision.durable" -> true
  | _ -> false

(* Dispatch: coordinator-kill mode handles coordinator-side crashes by
   failover; everything else (and every crash in default mode) is a full
   restart. *)
let recover_any errs label r ~point ~at ~start_lsns ~gid_before =
  if r.cfg.coordinator_kill && coordinator_point point then
    recover_kill errs label r ~at ~start_lsns ~gid_before
  else recover_crash errs label r ~at ~start_lsns ~gid_before

(* ------------------------------------------------------------------ *)
(* Deterministic sweep over the dist.* crash points. *)

let dist_point name = String.length name >= 5 && String.sub name 0 5 = "dist."

(* Dry-run with counters live to learn each dist point's passage count; also
   the zero-crash baseline check (the message-fault layer, if configured,
   stays live — consistency must hold under a faulty network alone). *)
let observe_counts cfg ~inputs =
  Fault.observe ();
  let r = fresh cfg ~inputs in
  exec_from r ~from:0;
  let counts =
    List.filter_map
      (fun name -> if dist_point name then Some (name, Fault.trips_of name) else None)
      (Fault.registered ())
  in
  Fault.disarm ();
  (counts, r)

let hit_spread ~want n =
  if n <= 0 then []
  else
    let want = max 1 (min want n) in
    List.init want (fun k -> if want = 1 then 1 else 1 + (k * (n - 1) / (want - 1)))
    |> List.sort_uniq compare

let run_one_crash ?(tag = "") cfg ~inputs ~point ~hit =
  let label = Printf.sprintf "%s:%d%s" point hit tag in
  let errs = ref [] in
  Fault.arm ~point ~hit;
  let r = fresh cfg ~inputs in
  let crashes = ref 0 in
  let rec go from =
    match exec_from r ~from with
    | () -> ()
    | exception Crashed { at; start_lsns; gid_before; point; _ } ->
        incr crashes;
        say cfg "  %s: crashed at txn %d, recovering %d partitions" label at
          (Array.length r.parts);
        Fault.disarm ();
        go (recover_any errs label r ~point ~at ~start_lsns ~gid_before)
  in
  go 0;
  Fault.disarm ();
  if !crashes = 0 then err errs label "armed crash never fired";
  check_consistency errs label r;
  teardown r;
  { r_label = label; r_crashes = !crashes; r_errors = List.rev !errs }

let sweep ?(config = default_config) () =
  let cfg = config in
  let inputs = gen_inputs cfg in
  let counts, clean = observe_counts cfg ~inputs in
  let errs0 = ref [] in
  List.iter
    (fun c -> err errs0 "baseline(no faults)" "consistency: %s" c)
    (Consistency.check (merged clean));
  teardown clean;
  (* coverage: a partitioned workload that never reaches a dist point is not
     testing two-phase commit at all *)
  List.iter
    (fun (name, n) ->
      if n = 0 then
        err errs0 "coverage" "crash point %s never tripped by the workload" name)
    counts;
  let base =
    { r_label = "baseline(no faults)"; r_crashes = 0; r_errors = List.rev !errs0 }
  in
  let per_point =
    List.concat_map
      (fun (point, n) ->
        List.map
          (fun hit ->
            say cfg "sweep %s hit %d/%d" point hit n;
            run_one_crash cfg ~inputs ~point ~hit)
          (hit_spread ~want:cfg.hits_per_point n))
      counts
  in
  base :: per_point

(* ------------------------------------------------------------------ *)
(* The chaos matrix: crash points × transport-fault kinds × restart mode.
   Each cell is one [run_one_crash] at the point's first passage with that
   single-kind message-fault spec live on every connection and the chosen
   recovery path.  [kill=true] cells only exist for coordinator-side
   points — killing the coordinator at a participant-side point is a
   no-op pairing.  [quick] trims to one fault kind per point (CI smoke);
   the nightly job runs the full cross product. *)

let matrix_faults =
  [
    ("net=none", Netfault.none);
    ("net=drop", Netfault.parse "drop=0.2,seed=11");
    ("net=dup", Netfault.parse "dup=0.2,seed=11");
    ("net=delay", Netfault.parse "delay=0.2,seed=11");
    ("net=reorder", Netfault.parse "reorder=0.2,seed=11");
    ("net=disconnect", Netfault.parse "disconnect=0.1,seed=11");
  ]

let sweep_matrix ?(config = default_config) ?(quick = false) () =
  let cfg = config in
  let inputs = gen_inputs cfg in
  let counts, clean = observe_counts { cfg with netfault = Netfault.none } ~inputs in
  teardown clean;
  let points = List.map fst counts in
  let faults =
    if quick then [ List.nth matrix_faults 1 ] else matrix_faults
  in
  List.concat_map
    (fun point ->
      List.concat_map
        (fun (ftag, spec) ->
          List.filter_map
            (fun kill ->
              if kill && not (coordinator_point point) then None
              else begin
                let tag =
                  Printf.sprintf "[%s]%s" ftag (if kill then "[kill]" else "")
                in
                say cfg "matrix %s %s kill=%b" point ftag kill;
                Some
                  (run_one_crash ~tag
                     { cfg with netfault = spec; coordinator_kill = kill }
                     ~inputs ~point ~hit:1)
              end)
            [ false; true ])
        faults)
    points

(* ------------------------------------------------------------------ *)
(* Chaos mode: every passage through any registered point (dist.* included)
   crashes with probability [chaos_p].  Faults are re-armed with a derived
   seed after each recovery, so successive crashes land at different
   points. *)

let chaos ?(config = default_config) ~seed () =
  let cfg = config in
  let label =
    Printf.sprintf "dist-chaos(seed=%d,p=%g%s%s)" seed cfg.chaos_p
      (if Netfault.is_none cfg.netfault then ""
       else "," ^ Netfault.to_string cfg.netfault)
      (if cfg.coordinator_kill then ",kill" else "")
  in
  let errs = ref [] in
  let inputs = gen_inputs cfg in
  let r = fresh cfg ~inputs in
  let crashes = ref 0 in
  Fault.arm_chaos ~seed ~p:cfg.chaos_p;
  let rec go from =
    if !crashes > 200 then begin
      Fault.disarm ();
      err errs label "gave up injecting after 200 crashes"
    end;
    match exec_from r ~from with
    | () -> ()
    | exception Crashed { at; start_lsns; gid_before; point; hit } ->
        incr crashes;
        say cfg "  %s: crash #%d at %s:%d (txn %d)" label !crashes point hit at;
        Fault.disarm ();
        let resume = recover_any errs label r ~point ~at ~start_lsns ~gid_before in
        Fault.arm_chaos ~seed:(seed + (7919 * !crashes)) ~p:cfg.chaos_p;
        go resume
  in
  go 0;
  Fault.disarm ();
  check_consistency errs label r;
  teardown r;
  { r_label = label; r_crashes = !crashes; r_errors = List.rev !errs }

(* ------------------------------------------------------------------ *)

let pp_result ppf r =
  if failed r then
    Format.fprintf ppf "@[<v2>FAIL %s (%d crashes):@,%a@]" r.r_label r.r_crashes
      (Format.pp_print_list Format.pp_print_string)
      r.r_errors
  else Format.fprintf ppf "ok   %s (%d crashes)" r.r_label r.r_crashes
