(* RPC transport for the 2PC coordinator.

   One connection per partition carries the coordinator's half of the
   protocol (Prepare/Decide, plus Resolve against a recovered coordinator)
   as length-prefixed frames:

     magic "ACCRPC\x00\x00" | u32 version | u32 length | marshalled frame

   — the same magic+version header discipline as the WAL
   ({!Acc_wal.Log.Header}), so a version bump is detected before a single
   payload byte is interpreted.

   Two implementations behind one [call] interface:

   - {e loopback}: the handler runs synchronously in the caller; frames
     still round-trip through encode/decode so framing bugs cannot hide.
     No wall-clock anywhere — a "timeout" is simply a reply the fault
     layer did not deliver — which keeps the crash/chaos harness
     deterministic.
   - {e pipe}: a [Unix.socketpair] with the partition's request loop on a
     dedicated domain; [call] writes the request and [select]s for the
     matching reply until its deadline.

   The fault layer sits on the send side of both directions (requests and
   replies draw from independent PRNG streams derived from the spec's
   seed), so a dropped Vote and a dropped Prepare are distinct faults.  A
   held-back frame (delay/reorder) is released by later sends, never by a
   timer — retries are what flush the network, exactly the property the
   idempotency tests need.  Every injected fault emits a
   [Trace.Net_fault] event. *)

module Fault = Acc_fault.Fault
module Netfault = Fault.Netfault
module Trace = Acc_obs.Trace
module Prng = Acc_util.Prng
module Header = Acc_wal.Log.Header

type msg =
  | Prepare of { gid : int; part : int }
  | Vote of { gid : int; ok : bool }
  | Decide of { gid : int; commit : bool }
  | Ack of { gid : int }
  | Resolve of { gid : int }

let msg_kind = function
  | Prepare _ -> "prepare"
  | Vote _ -> "vote"
  | Decide _ -> "decide"
  | Ack _ -> "ack"
  | Resolve _ -> "resolve"

let gid_of = function
  | Prepare { gid; _ } | Vote { gid; _ } | Decide { gid; _ } | Ack { gid }
  | Resolve { gid } ->
      gid

type frame = { seq : int; msg : msg }

let magic = "ACCRPC\x00\x00"
let version = 1
let header_len = Header.size ~magic

let encode f =
  let payload = Marshal.to_string (f.seq, f.msg) [] in
  let b = Buffer.create (header_len + 4 + String.length payload) in
  Buffer.add_string b (Header.to_string ~magic ~version);
  let len = Bytes.create 4 in
  Bytes.set_int32_be len 0 (Int32.of_int (String.length payload));
  Buffer.add_bytes b len;
  Buffer.add_string b payload;
  Buffer.contents b

let decode s =
  Header.check ~magic ~version ~what:"RPC frame" ~who:"Transport.decode"
    ~path:"<wire>" s;
  if String.length s < header_len + 4 then
    failwith "Transport.decode: frame truncated (no length)";
  let len = Int32.to_int (String.get_int32_be s header_len) in
  if String.length s <> header_len + 4 + len then
    failwith "Transport.decode: frame length mismatch";
  let seq, msg = Marshal.from_string (String.sub s (header_len + 4) len) 0 in
  { seq; msg }

(* Incremental frame extraction for the pipe's byte stream. *)
module Reader = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let add t src n =
    if t.len + n > Bytes.length t.buf then begin
      let b = Bytes.create (max (2 * Bytes.length t.buf) (t.len + n)) in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end;
    Bytes.blit src 0 t.buf t.len n;
    t.len <- t.len + n

  let next t =
    if t.len < header_len + 4 then None
    else begin
      let plen =
        Int32.to_int (Bytes.get_int32_be t.buf header_len)
      in
      let total = header_len + 4 + plen in
      if t.len < total then None
      else begin
        let f = decode (Bytes.sub_string t.buf 0 total) in
        Bytes.blit t.buf total t.buf 0 (t.len - total);
        t.len <- t.len - total;
        Some f
      end
    end

  let drain t =
    let rec go acc = match next t with
      | Some f -> go (f :: acc)
      | None -> List.rev acc
    in
    go []
end

(* The injectable fault layer: one state per stream direction.  [send]
   maps one outgoing frame to the frames actually put on the wire now —
   possibly none (drop, or held back), possibly two (dup), possibly
   trailing frames whose hold just expired.  Holds tick down per send, so
   delivery order is a pure function of the send sequence and the seed. *)
module Faults = struct
  type t = {
    spec : Netfault.spec;
    g : Prng.t;
    mutable burst : int;  (* disconnect flap: frames still to swallow *)
    mutable held : (int * frame) list;  (* sends-remaining, frame *)
  }

  let make spec ~dir =
    { spec; g = Prng.create ~seed:(spec.Netfault.seed + dir); burst = 0; held = [] }

  let note kind m =
    if Trace.enabled () then
      Trace.emit (Trace.Net_fault { kind; msg = msg_kind m })

  let send t f =
    if Netfault.is_none t.spec then [ f ]
    else begin
      let due, still = List.partition (fun (k, _) -> k <= 1) t.held in
      t.held <- List.map (fun (k, fr) -> (k - 1, fr)) still;
      let released = List.map snd due in
      let out =
        if not (Netfault.applies t.spec ~op:(msg_kind f.msg)) then [ f ]
        else if t.burst > 0 then begin
          t.burst <- t.burst - 1;
          note "disconnect" f.msg;
          []
        end
        else if Prng.chance t.g t.spec.drop then begin
          note "drop" f.msg;
          []
        end
        else if Prng.chance t.g t.spec.dup then begin
          note "dup" f.msg;
          [ f; f ]
        end
        else if Prng.chance t.g t.spec.delay then begin
          note "delay" f.msg;
          t.held <- t.held @ [ (Prng.int_in t.g 1 3, f) ];
          []
        end
        else if Prng.chance t.g t.spec.reorder then begin
          note "reorder" f.msg;
          t.held <- t.held @ [ (1, f) ];
          []
        end
        else if Prng.chance t.g t.spec.disconnect then begin
          note "disconnect" f.msg;
          t.burst <- Prng.int_in t.g 0 3;
          []
        end
        else [ f ]
      in
      out @ released
    end
end

type kind = [ `Loopback | `Pipe ]

let kind_name = function `Loopback -> "loopback" | `Pipe -> "pipe"

let kind_of_string = function
  | "loopback" -> `Loopback
  | "pipe" -> `Pipe
  | s -> invalid_arg ("Transport.kind_of_string: " ^ s)

type loopback = {
  handler : msg -> msg;
  lreqf : Faults.t;
  lrepf : Faults.t;
  mutable replies : (int * msg) list;
}

type pipe = {
  cfd : Unix.file_descr;
  preqf : Faults.t;
  reader : Reader.t;
  pending : (int, msg) Hashtbl.t;
  rbuf : Bytes.t;
  dom : unit Domain.t;
}

type conn = Loopback of loopback | Pipe of pipe

type t = { mu : Mutex.t; mutable seq : int; c : conn; mutable closed : bool }

let kind t = match t.c with Loopback _ -> `Loopback | Pipe _ -> `Pipe

let loopback ?(faults = Netfault.none) handler =
  {
    mu = Mutex.create ();
    seq = 0;
    closed = false;
    c =
      Loopback
        {
          handler;
          lreqf = Faults.make faults ~dir:0;
          lrepf = Faults.make faults ~dir:1;
          replies = [];
        };
  }

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write fd (Bytes.unsafe_of_string s) off len in
    write_all fd s (off + n) (len - n)
  end

(* The partition's request loop: read → handle → reply, one dedicated
   domain per connection.  A handler exception (including a simulated
   [Fault.Crash]) drops the request — the client times out and retries,
   which is exactly how a remote participant death would look. *)
let serve sfd handler repf =
  let rdr = Reader.create () in
  let buf = Bytes.create 65536 in
  let closed = ref false in
  let rec loop () =
    if not !closed then
      match Unix.read sfd buf 0 (Bytes.length buf) with
      | 0 -> closed := true
      | exception Unix.Unix_error ((Unix.EBADF | Unix.ECONNRESET | Unix.EPIPE), _, _)
        ->
          closed := true
      | n ->
          Reader.add rdr buf n;
          List.iter
            (fun (f : frame) ->
              match handler f.msg with
              | reply ->
                  List.iter
                    (fun (r : frame) ->
                      let s = encode r in
                      try write_all sfd s 0 (String.length s)
                      with Unix.Unix_error _ -> closed := true)
                    (Faults.send repf { seq = f.seq; msg = reply })
              | exception _ -> ())
            (Reader.drain rdr);
          loop ()
  in
  loop ();
  try Unix.close sfd with Unix.Unix_error _ -> ()

let pipe ?(faults = Netfault.none) handler =
  let sfd, cfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let repf = Faults.make faults ~dir:1 in
  let dom = Domain.spawn (fun () -> serve sfd handler repf) in
  {
    mu = Mutex.create ();
    seq = 0;
    closed = false;
    c =
      Pipe
        {
          cfd;
          preqf = Faults.make faults ~dir:0;
          reader = Reader.create ();
          pending = Hashtbl.create 16;
          rbuf = Bytes.create 65536;
          dom;
        };
  }

let loopback_call lb seq m =
  let f = decode (encode { seq; msg = m }) in
  List.iter
    (fun (rf : frame) ->
      let reply = lb.handler rf.msg in
      List.iter
        (fun (r : frame) -> lb.replies <- lb.replies @ [ (r.seq, r.msg) ])
        (Faults.send lb.lrepf (decode (encode { seq = rf.seq; msg = reply }))))
    (Faults.send lb.lreqf f);
  (* take the matching reply; discard stale ones (their caller gave up) *)
  let rec take acc = function
    | [] -> (None, List.rev acc)
    | (s, r) :: rest when s = seq -> (Some r, List.rev_append acc rest)
    | (s, _) :: rest when s < seq -> take acc rest
    | e :: rest -> take (e :: acc) rest
  in
  let r, q = take [] lb.replies in
  lb.replies <- q;
  r

let pipe_call p seq deadline m =
  Hashtbl.iter
    (fun s _ -> if s < seq then Hashtbl.remove p.pending s)
    (Hashtbl.copy p.pending);
  let fs = Faults.send p.preqf { seq; msg = m } in
  (try
     List.iter
       (fun (f : frame) ->
         let s = encode f in
         write_all p.cfd s 0 (String.length s))
       fs
   with Unix.Unix_error _ -> ());
  let until = Unix.gettimeofday () +. deadline in
  let rec wait () =
    match Hashtbl.find_opt p.pending seq with
    | Some r ->
        Hashtbl.remove p.pending seq;
        Some r
    | None ->
        let remain = until -. Unix.gettimeofday () in
        if remain <= 0. then None
        else begin
          match Unix.select [ p.cfd ] [] [] remain with
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              (* a signal interrupted the wait: loop with the remaining
                 deadline recomputed instead of leaking the exception
                 through [call] *)
              wait ()
          | [], _, _ -> None
          | _ -> (
              match Unix.read p.cfd p.rbuf 0 (Bytes.length p.rbuf) with
              | 0 -> None
              | exception Unix.Unix_error _ -> None
              | n ->
                  Reader.add p.reader p.rbuf n;
                  List.iter
                    (fun (f : frame) -> Hashtbl.replace p.pending f.seq f.msg)
                    (Reader.drain p.reader);
                  wait ())
        end
  in
  wait ()

let call ?(deadline = 1.0) t m =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if t.closed then None
      else begin
        t.seq <- t.seq + 1;
        let seq = t.seq in
        match t.c with
        | Loopback lb -> loopback_call lb seq m
        | Pipe p -> pipe_call p seq deadline m
      end)

let close t =
  Mutex.lock t.mu;
  let was_closed = t.closed in
  t.closed <- true;
  Mutex.unlock t.mu;
  if not was_closed then
    match t.c with
    | Loopback _ -> ()
    | Pipe p ->
        (try Unix.shutdown p.cfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try Unix.close p.cfd with Unix.Unix_error _ -> ());
        Domain.join p.dom
