module Tally = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float; (* Welford's sum of squared deviations *)
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable values : float list; (* retained for exact quantiles *)
    mutable sorted : float array option; (* cache invalidated by add *)
  }

  let create () =
    {
      count = 0;
      mean = 0.;
      m2 = 0.;
      total = 0.;
      min_v = infinity;
      max_v = neg_infinity;
      values = [];
      sorted = None;
    }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    t.values <- x :: t.values;
    t.sorted <- None

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min_v
  let max t = t.max_v

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.of_list t.values in
        Array.sort compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    if t.count = 0 then nan
    else begin
      let a = sorted t in
      let n = Array.length a in
      if n = 1 then a.(0)
      else begin
        let p = Float.max 0. (Float.min 1. p) in
        let rank = p *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = Stdlib.min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
      end
    end

  let merge a b =
    let t = create () in
    List.iter (add t) (List.rev_append a.values b.values);
    t
end

module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () = Hashtbl.create 16

  let add t name n =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t name) in
    Hashtbl.replace t name (cur + n)

  let incr t name = add t name 1
  let get t name = Option.value ~default:0 (Hashtbl.find_opt t name)

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
