module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = Atomic.incr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
  let drain t = Atomic.exchange t 0
end

module Gauge = struct
  (* A boxed-float atomic: set allocates, so gauges belong on sampling paths
     (the watchdog's cadence), not per-operation hot paths. *)
  type t = float Atomic.t

  let create () = Atomic.make 0.
  let set t v = Atomic.set t v
  let get t = Atomic.get t
end

module Latency = struct
  (* Each domain records into its own private tally — [Stats.Tally.add] is
     single-writer — and readers fold [Stats.Tally.merge] over the registered
     set.  Registration is a lock-free CAS prepend, so the hot path (record)
     never takes a lock and never contends with other domains. *)

  type slot = Stats.Tally.t

  type t = Stats.Tally.t list Atomic.t

  let create () = Atomic.make []

  let rec slot t =
    let tally = Stats.Tally.create () in
    let cur = Atomic.get t in
    if Atomic.compare_and_set t cur (tally :: cur) then tally else slot t

  let record slot v = Stats.Tally.add slot v

  let merged t =
    List.fold_left Stats.Tally.merge (Stats.Tally.create ()) (Atomic.get t)

  let snapshot = merged

  let count t =
    List.fold_left (fun acc tally -> acc + Stats.Tally.count tally) 0 (Atomic.get t)
end

module Histogram = struct
  (* Fixed log-scale buckets: bucket [i] counts values in
     (base * 2^(i-1), base * 2^i], bucket 0 everything <= base, the last
     bucket everything larger than its lower bound.  Recording is two atomic
     adds and no allocation, so it is safe (and cheap) from every worker
     domain; percentile reads walk the cumulative counts and interpolate
     linearly inside the winning bucket. *)

  type t = {
    base : float;  (* upper bound of bucket 0, in the recorded unit *)
    counts : int Atomic.t array;
    total : int Atomic.t;
    sum_ns : int Atomic.t;  (* sum scaled by 1e9 to stay an atomic int *)
  }

  let default_base = 1e-6
  let default_buckets = 48

  let create ?(base = default_base) ?(buckets = default_buckets) () =
    if base <= 0. || buckets < 2 then invalid_arg "Histogram.create";
    {
      base;
      counts = Array.init buckets (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      sum_ns = Atomic.make 0;
    }

  let bucket_of t v =
    if not (v > t.base) then 0
    else
      let i = 1 + int_of_float (Float.floor (Float.log2 (v /. t.base) -. 1e-9)) in
      min i (Array.length t.counts - 1)

  let record t v =
    let v = if Float.is_nan v || v < 0. then 0. else v in
    Atomic.incr t.counts.(bucket_of t v);
    ignore (Atomic.fetch_and_add t.total 1);
    ignore (Atomic.fetch_and_add t.sum_ns (int_of_float (v *. 1e9)))

  let count t = Atomic.get t.total
  let total t = float_of_int (Atomic.get t.sum_ns) /. 1e9

  let bucket_bounds ~base i =
    (* (lo, hi] of bucket i; bucket 0 starts at 0 *)
    let hi = base *. Float.pow 2. (float_of_int i) in
    let lo = if i = 0 then 0. else base *. Float.pow 2. (float_of_int (i - 1)) in
    (lo, hi)

  (* A snapshot is one pass over the bucket array; every derived read
     (percentile, mean, cumulative buckets) works from that single frozen
     view, so it can never mix bucket counts taken at different moments with
     a [total] taken at yet another — the torn-read hazard of walking the
     live atomics directly.  The snapshot's own count is the sum of its
     bucket counts, NOT the live [total] cell: a concurrent [record] that has
     landed its bucket increment but not yet its total increment (or vice
     versa) therefore cannot make a percentile walk run past the end or stop
     short. *)
  module Snapshot = struct
    type t = { base : float; counts : int array; sum : float }

    let count s = Array.fold_left ( + ) 0 s.counts
    let sum s = s.sum
    let bounds s i = bucket_bounds ~base:s.base i
    let buckets s = Array.length s.counts
    let mean s = if count s = 0 then nan else s.sum /. float_of_int (count s)

    let percentile s p =
      let n = count s in
      if n = 0 then nan
      else begin
        let p = Float.max 0. (Float.min 1. p) in
        let target = p *. float_of_int n in
        let rec walk i cum =
          if i >= Array.length s.counts then snd (bounds s (Array.length s.counts - 1))
          else
            let c = s.counts.(i) in
            if float_of_int (cum + c) >= target && c > 0 then begin
              let lo, hi = bounds s i in
              let frac =
                if c = 0 then 0. else (target -. float_of_int cum) /. float_of_int c
              in
              lo +. (Float.max 0. (Float.min 1. frac) *. (hi -. lo))
            end
            else walk (i + 1) (cum + c)
        in
        walk 0 0
      end

    let nonzero s =
      let out = ref [] in
      for i = Array.length s.counts - 1 downto 0 do
        if s.counts.(i) > 0 then out := (snd (bounds s i), s.counts.(i)) :: !out
      done;
      !out

    let cumulative s =
      (* (upper_bound, cumulative_count) per bucket, ascending — the shape of
         a Prometheus histogram's [le] series.  The last bucket is open-ended
         (it counts everything above its lower bound), so its upper bound is
         reported as [infinity]. *)
      let cum = ref 0 in
      List.init (Array.length s.counts) (fun i ->
          cum := !cum + s.counts.(i);
          let ub =
            if i = Array.length s.counts - 1 then infinity else snd (bounds s i)
          in
          (ub, !cum))

    let merge a b =
      if a.base <> b.base || Array.length a.counts <> Array.length b.counts then
        invalid_arg "Histogram.Snapshot.merge: shape mismatch";
      {
        base = a.base;
        counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
        sum = a.sum +. b.sum;
      }
  end

  let snapshot t =
    {
      Snapshot.base = t.base;
      counts = Array.map Atomic.get t.counts;
      sum = float_of_int (Atomic.get t.sum_ns) /. 1e9;
    }

  let mean t = Snapshot.mean (snapshot t)
  let percentile t p = Snapshot.percentile (snapshot t) p
  let nonzero_buckets t = Snapshot.nonzero (snapshot t)
end
