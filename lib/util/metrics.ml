module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = Atomic.incr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Latency = struct
  (* Each domain records into its own private tally — [Stats.Tally.add] is
     single-writer — and readers fold [Stats.Tally.merge] over the registered
     set.  Registration is a lock-free CAS prepend, so the hot path (record)
     never takes a lock and never contends with other domains. *)

  type slot = Stats.Tally.t

  type t = Stats.Tally.t list Atomic.t

  let create () = Atomic.make []

  let rec slot t =
    let tally = Stats.Tally.create () in
    let cur = Atomic.get t in
    if Atomic.compare_and_set t cur (tally :: cur) then tally else slot t

  let record slot v = Stats.Tally.add slot v

  let merged t =
    List.fold_left Stats.Tally.merge (Stats.Tally.create ()) (Atomic.get t)

  let count t =
    List.fold_left (fun acc tally -> acc + Stats.Tally.count tally) 0 (Atomic.get t)
end
