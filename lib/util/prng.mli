(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through values of type {!t} so that
    every experiment, test and example is reproducible from a single integer
    seed.  The generator is SplitMix64: fast, decent statistical quality, and
    {!split} yields an independent stream, which lets each simulated terminal
    own its own generator without cross-coupling event order and argument
    choice. *)

type t

val create : seed:int -> t
(** Fresh generator from a seed. Equal seeds give equal streams. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the remainder of [g]'s stream. *)

val copy : t -> t
(** Duplicate the current state (both copies then produce the same stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. Requires [x > 0.]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is true with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for think
    times. Requires [mean > 0.]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniformly random permutation of [0 .. n-1]. *)

val alpha_string : t -> min:int -> max:int -> string
(** Random string of letters with length uniform in [\[min, max\]]; mirrors
    TPC-C's a-string generator. *)

val numeric_string : t -> int -> string
(** Random string of digits of exactly the given length. *)

type zipf
(** Precomputed constants for a Zipfian distribution over ranks
    [0 .. n-1] (rank 0 most popular). *)

val zipf : n:int -> theta:float -> zipf
(** Gray et al.'s generator (the YCSB formulation): the normalization
    constants are computed once here, in O(n), so each {!zipf_draw} is
    O(1).  [theta] in [\[0, 1)]; [theta = 0.] is exactly uniform and
    skew grows with [theta]. *)

val zipf_draw : t -> zipf -> int
(** A rank in [0 .. n-1], Zipf-distributed under the given constants. *)
