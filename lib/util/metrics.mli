(** Domain-safe metrics for the multicore runtime.

    {!Stats} is deliberately single-threaded (the simulator owns it); this
    module provides the shared-memory counterparts: plain atomic counters,
    latency accumulators where each domain writes a private {!Stats.Tally}
    and readers merge on demand, and fixed-bucket log-scale histograms for
    hot-path latency recording.

    {b Read consistency contract}, shared by all three: reads taken while
    writer domains are still running are {e approximate live views} — they
    may miss in-flight updates and, for multi-cell structures (latency slots,
    histogram buckets), need not be a consistent cut across cells.  Reads
    become exact once the writing domains have quiesced (joined, or provably
    stopped recording).  Benchmarks must therefore join workers before
    reading, and implement warmup by {e gating recording at the source} (only
    record after the warmup deadline) rather than resetting shared state
    mid-run. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val get : t -> int
  (** Approximate while writers run; exact after they quiesce. *)

  val reset : t -> unit
  (** Plain store of 0.  {b Not atomic with a preceding {!get}}: increments
      landing between the [get] and the [reset] are lost (torn).  For
      read-and-zero semantics — e.g. discarding warmup counts — use
      {!drain}. *)

  val drain : t -> int
  (** Atomically read the current value and zero the counter (a single
      exchange, so no concurrent increment is ever lost — it lands either in
      the returned value or in the fresh epoch). *)
end

module Gauge : sig
  type t
  (** A last-value float cell any domain may set or read (e.g. the watchdog's
      sampled queue depth and oldest-waiter age).  [set] boxes the float, so
      use gauges on sampling cadences, not per-operation hot paths. *)

  val create : unit -> t
  (** Starts at [0.]. *)

  val set : t -> float -> unit
  val get : t -> float
end

module Latency : sig
  type t

  type slot
  (** A single domain's private accumulator.  {!record} on a slot is
      wait-free and must only be called from the domain that obtained it. *)

  val create : unit -> t

  val slot : t -> slot
  (** Register (lock-free) a fresh per-domain accumulator. *)

  val record : slot -> float -> unit

  val merged : t -> Stats.Tally.t
  (** Fold of {!Stats.Tally.merge} over every registered slot — an
      {e approximate live view} while writers run (see the module contract):
      samples being recorded concurrently may be missed, and different slots
      are read at different moments. *)

  val snapshot : t -> Stats.Tally.t
  (** Same fold as {!merged}, under its exact-after-join reading: call only
      after the recording domains have joined, at which point the result is
      the complete, exact sample set.  The two names exist so call sites
      document which contract they rely on. *)

  val count : t -> int
end

module Histogram : sig
  type t
  (** Fixed log-scale buckets: bucket [i] spans [(base·2{^i-1}, base·2{^i}]],
      bucket 0 is [[0, base]], the last bucket is open-ended.  {!record} is
      two atomic adds — no allocation, no lock — so any domain may record
      into a shared histogram; the trade against {!Latency} is bounded memory
      and O(1) hot path for ~2× worst-case relative quantile error (one
      bucket width). *)

  val default_base : float
  (** [1e-6] — with seconds as the unit, bucket 0 is "at most 1µs". *)

  val default_buckets : int
  (** 48 — an upper span of 1µs·2{^47} ≈ 1.6 days. *)

  val create : ?base:float -> ?buckets:int -> unit -> t

  val record : t -> float -> unit
  (** Negative and NaN samples are clamped to 0 (they land in bucket 0).
      Three separate atomic adds (bucket, total, sum), so a concurrent reader
      may observe them in any combination — which is why every derived read
      below goes through {!snapshot}. *)

  val count : t -> int
  val total : t -> float

  (** A frozen single-pass view of the buckets.  All derived statistics are
      computed against the snapshot's own bucket counts (its count is the sum
      of those counts, never the live total cell), so a percentile walk can
      never run past the end of the array or stop short because a concurrent
      {!record} landed one of its three atomic adds but not the others.
      Snapshots of a live histogram remain {e approximate} in the sense of
      the module contract (they may miss in-flight samples); they are merely
      always internally consistent. *)
  module Snapshot : sig
    type t = { base : float; counts : int array; sum : float }

    val count : t -> int
    val sum : t -> float
    val mean : t -> float
    val buckets : t -> int

    val bounds : t -> int -> float * float
    (** [(lo, hi]] of bucket [i]; bucket 0 starts at 0. *)

    val percentile : t -> float -> float

    val nonzero : t -> (float * int) list
    (** [(upper_bound, count)] for each non-empty bucket, ascending. *)

    val cumulative : t -> (float * int) list
    (** [(upper_bound, cumulative_count)] for {e every} bucket, ascending —
        the Prometheus [le] series.  The final (open-ended) bucket's upper
        bound is [infinity]. *)

    val merge : t -> t -> t
    (** Pointwise sum.  Commutative and associative, so merging per-domain
        snapshots is order-independent.  Raises [Invalid_argument] if the
        bases or bucket counts differ. *)
  end

  val snapshot : t -> Snapshot.t

  val mean : t -> float
  (** [Snapshot.mean] of a fresh snapshot. *)

  val percentile : t -> float -> float
  (** [percentile t 0.95] snapshots the buckets once, then walks the
      cumulative counts and interpolates linearly inside the bucket
      containing the rank; [nan] when empty.  Approximate while writers run
      (module contract), and approximate in value to within the winning
      bucket's width. *)

  val nonzero_buckets : t -> (float * int) list
  (** [(upper_bound, count)] for each non-empty bucket, ascending. *)
end
