(** Domain-safe metrics for the multicore runtime.

    {!Stats} is deliberately single-threaded (the simulator owns it); this
    module provides the shared-memory counterparts: plain atomic counters,
    and latency accumulators where each domain writes a private
    {!Stats.Tally} and readers merge on demand. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Latency : sig
  type t

  type slot
  (** A single domain's private accumulator.  {!record} on a slot is
      wait-free and must only be called from the domain that obtained it. *)

  val create : unit -> t

  val slot : t -> slot
  (** Register (lock-free) a fresh per-domain accumulator. *)

  val record : slot -> float -> unit

  val merged : t -> Stats.Tally.t
  (** Fold of {!Stats.Tally.merge} over every registered slot.  Exact once
      the writing domains have quiesced (joined); an approximate live view
      otherwise. *)

  val count : t -> int
end
