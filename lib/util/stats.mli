(** Online statistics used by the experiment harness.

    A {!Tally} accumulates scalar observations (response times, queue waits)
    with numerically stable mean/variance and exact quantiles (observations
    are retained; experiment sizes are small enough that this is cheap and it
    keeps quantiles exact rather than approximate). *)

module Tally : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** Mean of the observations; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0,1\]], linear interpolation between
      order statistics; [nan] when empty. *)

  val merge : t -> t -> t
  (** Combined tally of both argument tallies (arguments unchanged). *)
end

module Counter : sig
  (** Named integer counters, e.g. commits/aborts/deadlocks per experiment. *)

  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end
