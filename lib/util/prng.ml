(* SplitMix64 (Steele, Lea, Flood 2014).  The state is a single 64-bit
   counter advanced by the golden-gamma; outputs are a bijective mix of the
   state, so distinct states never collide within a stream. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = bits64 g in
  (* Remix so that the child stream is decorrelated from the parent's
     subsequent outputs. *)
  { state = mix (Int64.logxor seed 0x5851F42D4C957F2DL) }

let copy g = { state = g.state }

let int g bound =
  assert (bound > 0);
  (* Take the top bits; modulo bias is negligible for bounds << 2^62 and the
     workload bounds are tiny, but use rejection to be exact. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 g) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub bound64 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g x =
  assert (x > 0.);
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  let u = Int64.to_float bits /. 9007199254740992. in
  u *. x

let bool g = Int64.logand (bits64 g) 1L = 1L

let chance g p =
  if p <= 0. then false
  else if p >= 1. then true
  else float g 1.0 < p

let exponential g ~mean =
  assert (mean > 0.);
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let alpha_string g ~min ~max =
  let len = int_in g min max in
  String.init len (fun _ -> Char.chr (Char.code 'a' + int g 26))

let numeric_string g len = String.init len (fun _ -> Char.chr (Char.code '0' + int g 10))

(* Zipfian sampler after Gray et al. (SIGMOD '94), the YCSB formulation:
   precompute the normalization constants once, then each draw costs one
   uniform and a couple of [**].  [theta = 0.] degenerates to uniform. *)
type zipf = { zn : int; z_theta : float; z_zetan : float; z_alpha : float; z_eta : float }

let zipf ~n ~theta =
  assert (n > 0);
  assert (theta >= 0. && theta < 1.);
  if theta = 0. then { zn = n; z_theta = 0.; z_zetan = 0.; z_alpha = 0.; z_eta = 0. }
  else begin
    let zeta m = 
      let s = ref 0. in
      for i = 1 to m do s := !s +. (1. /. (float_of_int i ** theta)) done;
      !s
    in
    let zetan = zeta n in
    let zeta2 = zeta (min 2 n) in
    let alpha = 1. /. (1. -. theta) in
    let eta = (1. -. ((2. /. float_of_int n) ** (1. -. theta))) /. (1. -. (zeta2 /. zetan)) in
    { zn = n; z_theta = theta; z_zetan = zetan; z_alpha = alpha; z_eta = eta }
  end

let zipf_draw g z =
  if z.z_theta = 0. then int g z.zn
  else begin
    let u = float g 1.0 in
    let uz = u *. z.z_zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** z.z_theta) then 1
    else
      let rank =
        float_of_int z.zn
        *. (((z.z_eta *. u) -. z.z_eta +. 1.) ** z.z_alpha)
      in
      let r = int_of_float rank in
      if r >= z.zn then z.zn - 1 else if r < 0 then 0 else r
  end
