(* The order-processing scenario of §4 of the paper, promoted from
   examples/order_processing.ml to a first-class workload.  [op_order]
   draws an order number from a single global counter (the admission-gate
   hotspot), inserts the header, then fills one line per item; its loop
   invariant I1 — "my order's line count matches my progress" — is
   protected by assertional locks over the instance's own fresh rows.
   [op_bill] is a single analyzed step whose precondition IS that
   conjunct: its admission assertional lock parks it while the same
   order's op_order is in flight, and only then — bills of other orders
   pass straight through.  The example binary is now a thin wrapper over
   this module's schema, steps and instances. *)

module W = Workload_intf
module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Program = Acc_core.Program
module Assertion = Acc_core.Assertion
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
module Prng = Acc_util.Prng

let v_int n = Value.Int n
let as_int = Value.as_int

(* ------------------------------------------------------------------ *)
(* Schema and population *)

let items_of_scale scale = 20 * max 1 scale
let init_stock = 100_000

let make_db stock_levels =
  let db = Database.create () in
  let counter =
    Database.create_table db
      (Schema.make ~name:"counter" ~key:[ "id" ]
         [ Schema.col "id" Value.Tint; Schema.col "next" Value.Tint ])
  in
  Table.insert counter [| v_int 0; v_int 1 |];
  let _orders =
    Database.create_table db
      (Schema.make ~name:"orders" ~key:[ "order_id" ]
         [
           Schema.col "order_id" Value.Tint;
           Schema.col "num_items" Value.Tint;
           Schema.col "total" Value.Tint;
         ])
  in
  let orderlines =
    Database.create_table db
      (Schema.make ~name:"orderlines" ~key:[ "order_id"; "item_id" ]
         [
           Schema.col "order_id" Value.Tint;
           Schema.col "item_id" Value.Tint;
           Schema.col "ordered" Value.Tint;
           Schema.col "filled" Value.Tint;
         ])
  in
  Table.add_index orderlines ~name:"by_order" [ "order_id" ];
  let stock =
    Database.create_table db
      (Schema.make ~name:"stock" ~key:[ "item_id" ]
         [ Schema.col "item_id" Value.Tint; Schema.col "s_level" Value.Tint ])
  in
  let prices =
    Database.create_table db
      (Schema.make ~name:"prices" ~key:[ "item_id" ]
         [ Schema.col "item_id" Value.Tint; Schema.col "price" Value.Tint ])
  in
  List.iter
    (fun (item, level, price) ->
      Table.insert stock [| v_int item; v_int level |];
      Table.insert prices [| v_int item; v_int price |])
    stock_levels;
  db

let populate ~items ~seed =
  let g = Prng.create ~seed in
  make_db (List.init items (fun i -> (i + 1, init_stock, 5 + Prng.int g 50)))

(* ------------------------------------------------------------------ *)
(* Static decomposition (the §4 step/assertion ids of the example) *)

let fresh = Footprint.Fresh

let step_header =
  Program.step ~id:10 ~name:"header" ~txn_type:"op_order" ~index:1
    ~reads:[ Footprint.make "counter" (Footprint.Columns [ "next" ]) ]
    ~writes:
      [
        Footprint.make "counter" (Footprint.Columns [ "next" ]);
        Footprint.make ~fresh "orders" Footprint.All_columns;
      ]
    ()

let step_line =
  Program.step ~id:11 ~name:"line" ~txn_type:"op_order" ~index:2 ~repeats:true
    ~reads:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ~writes:
      [
        Footprint.make "stock" (Footprint.Columns [ "s_level" ]);
        Footprint.make ~fresh "orderlines" Footprint.All_columns;
      ]
    ()

let step_cancel =
  Program.step ~id:12 ~name:"cancel" ~txn_type:"op_order" ~index:0
    ~reads:[ Footprint.make ~fresh "orderlines" Footprint.All_columns ]
    ~writes:
      [
        Footprint.make "stock" (Footprint.Columns [ "s_level" ]);
        Footprint.make ~fresh "orders" Footprint.All_columns;
        Footprint.make ~fresh "orderlines" Footprint.All_columns;
      ]
    ()

(* I1 restricted to this instance's own order *)
let a_loop_inv =
  Assertion.make ~id:100 ~name:"I1_mine" ~txn_type:"op_order" ~pre_of:2
    ~until:Assertion.until_commit
    ~refs:
      [
        Footprint.make ~fresh "orders" (Footprint.Columns [ "num_items" ]);
        Footprint.make ~fresh "orderlines" Footprint.All_columns;
      ]

let step_bill =
  Program.step ~id:13 ~name:"total" ~txn_type:"op_bill" ~index:1
    ~reads:
      [
        Footprint.make "orders" Footprint.All_columns;
        Footprint.make "orderlines" Footprint.All_columns;
        Footprint.make "prices" (Footprint.Columns [ "price" ]);
      ]
    ~writes:[ Footprint.make "orders" (Footprint.Columns [ "total" ]) ]
    ()

(* bill's precondition: I1 for the order it bills (Shared: may be anyone's) *)
let a_bill_i1 =
  Assertion.make ~id:101 ~name:"I1_billed" ~txn_type:"op_bill" ~pre_of:1 ~until:1
    ~refs:
      [
        Footprint.make "orders" (Footprint.Columns [ "num_items" ]);
        Footprint.make "orderlines" Footprint.All_columns;
      ]

let new_order_type =
  Program.txn_type ~name:"op_order" ~steps:[ step_header; step_line ] ~comp:step_cancel
    ~assertions:[ a_loop_inv ] ()

let bill_type = Program.txn_type ~name:"op_bill" ~steps:[ step_bill ] ~assertions:[ a_bill_i1 ] ()
let workload = Program.workload [ new_order_type; bill_type ]
let interference = Interference.build workload
let semantics = Interference.semantics interference

(* ------------------------------------------------------------------ *)
(* Compensation (area-driven: usable by the in-memory path and replay) *)

let cancel_order ~order ctx ~completed =
  if completed >= 1 && order >= 0 then begin
    (* the lines are this instance's own fresh rows: hunt them through the
       by_order index and return their stock *)
    let lines =
      Executor.scan ctx "orderlines" ~where:(Predicate.Eq ("order_id", v_int order)) ()
    in
    List.iter
      (fun row ->
        let item = as_int row.(1) and filled = as_int row.(3) in
        let level = as_int (Executor.read_exn ctx "stock" [ v_int item ]).(1) in
        Executor.set_column ctx "stock" [ v_int item ] "s_level" (v_int (level + filled));
        Executor.delete ctx "orderlines" [ v_int order; v_int item ])
      lines;
    if Executor.read ctx "orders" [ v_int order ] <> None then
      Executor.delete ctx "orders" [ v_int order ]
  end

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> failwith (Printf.sprintf "order_processing replay: missing area field %s" name)

let register_replay () =
  Replay.register ~txn_type:"op_order" ~step_type:step_cancel.Program.sd_id
    (fun ctx ~completed ~area ->
      cancel_order ~order:(as_int (field area "order_id")) ctx ~completed)

(* ------------------------------------------------------------------ *)
(* Run-time instances (shared with the example binary) *)

let new_order ?(pace = fun () -> Txn_effect.yield ()) ?(fail = false) ~items () =
  let order_id = ref (-1) in
  let n_items = List.length items in
  let header ctx =
    let row =
      Executor.update ctx "counter" [ v_int 0 ] (fun row ->
          row.(1) <- v_int (as_int row.(1) + 1);
          row)
    in
    order_id := as_int row.(1) - 1;
    Executor.insert ctx "orders" [| v_int !order_id; v_int n_items; v_int (-1) |]
  in
  let line idx (item, qty) ctx =
    pace ();
    (* a visible interleaving point between order lines *)
    if fail && idx = n_items - 1 then raise Txn_effect.Abort_requested;
    let level = as_int (Executor.read_exn ctx "stock" [ v_int item ]).(1) in
    let filled = min qty level in
    Executor.set_column ctx "stock" [ v_int item ] "s_level" (v_int (level - filled));
    Executor.insert ctx "orderlines" [| v_int !order_id; v_int item; v_int qty; v_int filled |]
  in
  let inst =
    Program.instance ~def:new_order_type
      ~steps:
        ((step_header, header) :: List.mapi (fun idx it -> (step_line, line idx it)) items)
      ~assertions:
        [
          {
            Program.ai_assertion = a_loop_inv;
            ai_from = 2;
            ai_until = 1 + n_items;
            ai_check = None;
          };
        ]
      ~footprints:(fun j ->
        if j = 1 then
          [
            (Mode.IX, Rid.Table "counter"); (Mode.X, Rid.Tuple ("counter", [ v_int 0 ]));
            (Mode.IX, Rid.Table "orders");
          ]
        else if j >= 2 && j <= 1 + n_items then
          let item, _ = List.nth items (j - 2) in
          [
            (Mode.IX, Rid.Table "stock"); (Mode.X, Rid.Tuple ("stock", [ v_int item ]));
            (Mode.IX, Rid.Table "orderlines");
          ]
        else [])
      ~compensate:(fun ctx ~completed -> cancel_order ~order:!order_id ctx ~completed)
      ~comp_area:(fun () -> [ ("order_id", v_int !order_id) ])
      ()
  in
  (inst, order_id)

let bill_body ?(total = ref (-1)) ~order ctx =
  match Executor.read ctx "orders" [ v_int order ] with
  | None -> () (* cancelled or never placed: billing is a no-op *)
  | Some header ->
      let n = as_int header.(1) in
      let lines =
        Executor.scan ctx "orderlines" ~where:(Predicate.Eq ("order_id", v_int order)) ()
      in
      if List.length lines <> n then
        failwith
          (Printf.sprintf "op_bill: order %d has %d lines, header says %d (I1 broken)" order
             (List.length lines) n);
      total :=
        List.fold_left
          (fun acc row ->
            acc
            + as_int row.(3) * as_int (Executor.read_exn ctx "prices" [ v_int (as_int row.(1)) ]).(1))
          0 lines;
      Executor.set_column ctx "orders" [ v_int order ] "total" (v_int !total)

let bill ~order =
  let total = ref (-1) in
  let admission =
    { Program.ai_assertion = a_bill_i1; ai_from = 1; ai_until = 1; ai_check = None }
  in
  let inst =
    Program.instance ~def:bill_type
      ~steps:[ (step_bill, fun ctx -> bill_body ~total ~order ctx) ]
      ~assertions:[ admission ]
      ~admission:[ (admission, [ Rid.Tuple ("orders", [ v_int order ]) ]) ]
      ()
  in
  (inst, total)

(* ------------------------------------------------------------------ *)
(* Benchmark surface *)

type input =
  | Place of { items : (int * int) list; fail : bool }
  | Bill of { order : int }

let txn_name = function Place _ -> "op_order" | Bill _ -> "op_bill"
let forced_abort = function Place { fail; _ } -> fail | Bill _ -> false

(* generation-time estimate of how many orders exist, so bills target
   plausible ids; bills of not-yet-placed or cancelled orders are no-ops *)
let placed_hint = Atomic.make 0

type env = {
  gen : Prng.t;
  n_items : int;
  zipf : Prng.zipf option;
  abort_rate : float;
  pace : unit -> unit;
}

let make_env ?(pace = fun () -> ()) ~items ~skew ~abort_rate ~mix ~seed () =
  (match mix with
  | None | Some "standard" -> ()
  | Some m -> failwith (Printf.sprintf "order-processing: unknown mix %S" m));
  {
    gen = Prng.create ~seed;
    n_items = items;
    zipf = (if skew > 0. then Some (Prng.zipf ~n:items ~theta:skew) else None);
    abort_rate;
    pace;
  }

let split_env env = { env with gen = Prng.split env.gen }

let pick_item env =
  match env.zipf with
  | Some z -> 1 + Prng.zipf_draw env.gen z
  | None -> 1 + Prng.int env.gen env.n_items

let gen_input env =
  let g = env.gen in
  let placed = Atomic.get placed_hint in
  if placed > 0 && Prng.int g 100 < 20 then Bill { order = 1 + Prng.int g placed }
  else begin
    let k = 1 + Prng.int g 3 in
    let rec draw acc n =
      if n = 0 then acc
      else
        let item = pick_item env in
        if List.mem_assoc item acc then draw acc n
        else draw ((item, 1 + Prng.int g 5) :: acc) (n - 1)
    in
    Atomic.incr placed_hint;
    Place { items = draw [] k; fail = Prng.chance g env.abort_rate }
  end

let reset_global () =
  Atomic.set placed_hint 0;
  register_replay ()

let run_acc ?options ?stop eng env input =
  match input with
  | Place { items; fail } ->
      let inst, _ = new_order ~pace:env.pace ~fail ~items () in
      Runtime.run ?options ?stop eng inst
  | Bill { order } ->
      let inst, _ = bill ~order in
      Runtime.run ?options ?stop eng inst

let flat env input ctx =
  match input with
  | Place { items; fail } ->
      let order_id = ref (-1) in
      let n_items = List.length items in
      let row =
        Executor.update ctx "counter" [ v_int 0 ] (fun row ->
            row.(1) <- v_int (as_int row.(1) + 1);
            row)
      in
      order_id := as_int row.(1) - 1;
      Executor.insert ctx "orders" [| v_int !order_id; v_int n_items; v_int (-1) |];
      List.iteri
        (fun idx (item, qty) ->
          env.pace ();
          if fail && idx = n_items - 1 then raise Txn_effect.Abort_requested;
          let level = as_int (Executor.read_exn ctx "stock" [ v_int item ]).(1) in
          let filled = min qty level in
          Executor.set_column ctx "stock" [ v_int item ] "s_level" (v_int (level - filled));
          Executor.insert ctx "orderlines"
            [| v_int !order_id; v_int item; v_int qty; v_int filled |])
        items
  | Bill { order } -> bill_body ~order ctx

let run_flat ?stop eng env input =
  W.Run.flat ?stop ~txn_type:(txn_name input) eng (fun ctx -> flat env input ctx)

(* ------------------------------------------------------------------ *)
(* Invariants *)

let consistency db =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let orders = Database.table db "orders" in
  let orderlines = Database.table db "orderlines" in
  let stock = Database.table db "stock" in
  (* I1 globally: every order's line count matches its header *)
  Table.iter
    (fun _ row ->
      let o = as_int row.(0) and n = as_int row.(1) in
      let actual = Table.scan_count ~where:(Predicate.Eq ("order_id", v_int o)) orderlines in
      if n <> actual then add "order_processing: order %d has %d lines, header says %d" o actual n)
    orders;
  (* stock conservation: every unit missing from stock is filled on a line *)
  let filled = Table.fold (fun _ row acc -> acc + as_int row.(3)) orderlines 0 in
  let on_hand = Table.fold (fun _ row acc -> acc + as_int row.(1)) stock 0 in
  let n_items = Table.cardinality stock in
  if on_hand + filled <> n_items * init_stock then
    add "order_processing: stock %d + filled %d != initial %d" on_hand filled
      (n_items * init_stock);
  Table.iter
    (fun _ row ->
      if as_int row.(1) < 0 then
        add "order_processing: item %d oversold (%d)" (as_int row.(0)) (as_int row.(1)))
    stock;
  List.rev !violations

(* ------------------------------------------------------------------ *)

let make (spec : W.spec) : W.t =
  let items = items_of_scale spec.W.scale in
  let abort_rate = Option.value ~default:0.02 spec.W.abort_rate in
  let skew = spec.W.skew in
  let mix = spec.W.mix in
  (module struct
    let name = "order-processing"
    let describe = "the paper's Sec 4 scenario: counter-gated orders with admission-locked bills"
    let conflict_shape = "global order counter + admission gate on in-flight orders"

    type nonrec input = input
    type nonrec env = env

    let populate ~seed = populate ~items ~seed
    let make_env ?pace ~seed () = make_env ?pace ~items ~skew ~abort_rate ~mix ~seed ()
    let split_env = split_env
    let reset_global = reset_global
    let gen_input = gen_input
    let txn_name = txn_name
    let forced_abort = forced_abort
    let workload = workload
    let interference = interference
    let semantics = semantics
    let run_flat = run_flat
    let run_acc = run_acc
    let consistency = consistency
    let extras () = []
  end : W.S)
