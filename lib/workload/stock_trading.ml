(* The stock-trading scenario, promoted from examples/stock_trading.ml:
   a buy works down the book of sell orders one lot-step at a time, taking
   the cheapest available lot in each step.  The point of the workload is
   that NO interstep assertion is needed — each lot-step's postcondition is
   local to the rows it touched, so concurrent buys interleave freely and
   the resulting histories are (by design) not conflict-serializable while
   still preserving share conservation.  Compensation returns bought shares
   to their lots; the promoted ledger carries the source lot explicitly so
   undo is exact (the example's price-to-lot guess is gone). *)

module W = Workload_intf
module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Program = Acc_core.Program
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
module Prng = Acc_util.Prng

let v_int n = Value.Int n
let as_int = Value.as_int

(* ------------------------------------------------------------------ *)
(* Schema and population *)

let lots_of_scale scale = 5 * max 1 scale
let init_shares = 100_000

let make_db lots =
  let db = Database.create () in
  let sell =
    Database.create_table db
      (Schema.make ~name:"sell_orders" ~key:[ "lot_id" ]
         [
           Schema.col "lot_id" Value.Tint;
           Schema.col "price" Value.Tint;
           Schema.col "shares" Value.Tint;
         ])
  in
  let _ledger =
    Database.create_table db
      (Schema.make ~name:"ledger" ~key:[ "buyer"; "entry" ]
         [
           Schema.col "buyer" Value.Tint;
           Schema.col "entry" Value.Tint;
           Schema.col "lot" Value.Tint;
           Schema.col "price" Value.Tint;
           Schema.col "shares" Value.Tint;
         ])
  in
  List.iter
    (fun (lot, price, shares) -> Table.insert sell [| v_int lot; v_int price; v_int shares |])
    lots;
  db

let populate ~lots ~seed =
  let g = Prng.create ~seed in
  make_db (List.init lots (fun i -> (i + 1, 20 + Prng.int g 30, init_shares)))

(* ------------------------------------------------------------------ *)
(* Static decomposition: one repeating lot-step, no assertions *)

let step_lot =
  Program.step ~id:1 ~name:"buy-lot" ~txn_type:"st_buy" ~index:1 ~repeats:true
    ~reads:
      [
        Acc_core.Footprint.make "sell_orders"
          (Acc_core.Footprint.Columns [ "price"; "shares" ]);
      ]
    ~writes:
      [
        Acc_core.Footprint.make "sell_orders" (Acc_core.Footprint.Columns [ "shares" ]);
        Acc_core.Footprint.make ~fresh:Acc_core.Footprint.Fresh "ledger"
          Acc_core.Footprint.All_columns;
      ]
    ()

let step_return =
  Program.step ~id:2 ~name:"return-shares" ~txn_type:"st_buy" ~index:0
    ~reads:[ Acc_core.Footprint.make ~fresh:Acc_core.Footprint.Fresh "ledger" Acc_core.Footprint.All_columns ]
    ~writes:
      [
        Acc_core.Footprint.make "sell_orders" (Acc_core.Footprint.Columns [ "shares" ]);
        Acc_core.Footprint.make ~fresh:Acc_core.Footprint.Fresh "ledger"
          Acc_core.Footprint.All_columns;
      ]
    ()

let buy_type =
  Program.txn_type ~name:"st_buy" ~steps:[ step_lot ] ~comp:step_return ~assertions:[] ()
let workload = Program.workload [ buy_type ]
let interference = Interference.build workload
let semantics = Interference.semantics interference

(* ------------------------------------------------------------------ *)
(* Compensation: walk my ledger entries back into their lots *)

let return_shares ~buyer ctx ~completed =
  if completed >= 1 then begin
    let mine = Executor.scan ctx "ledger" ~where:(Predicate.Eq ("buyer", v_int buyer)) () in
    List.iter
      (fun row ->
        let entry = as_int row.(1) and lot = as_int row.(2) and shares = as_int row.(4) in
        let avail = as_int (Executor.read_exn ctx "sell_orders" [ v_int lot ]).(2) in
        Executor.set_column ctx "sell_orders" [ v_int lot ] "shares" (v_int (avail + shares));
        Executor.delete ctx "ledger" [ v_int buyer; v_int entry ])
      mine
  end

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> failwith (Printf.sprintf "stock_trading replay: missing area field %s" name)

let register_replay () =
  Replay.register ~txn_type:"st_buy" ~step_type:step_return.Program.sd_id
    (fun ctx ~completed ~area ->
      return_shares ~buyer:(as_int (field area "buyer")) ctx ~completed)

(* ------------------------------------------------------------------ *)
(* Run-time instance *)

let cheapest_lot ctx =
  let lots = Executor.scan ctx "sell_orders" () in
  let avail = List.filter (fun row -> as_int row.(2) > 0) lots in
  match
    List.sort
      (fun a b ->
        match compare (as_int a.(1)) (as_int b.(1)) with
        | 0 -> compare (as_int a.(0)) (as_int b.(0))
        | c -> c)
      avail
  with
  | [] -> None
  | best :: _ -> Some (as_int best.(0))

(* [steps] bounds how many lots one buy may touch; a step past the point
   where [want] is satisfied is a no-op. *)
let buy ?(pace = fun () -> Txn_effect.yield ()) ?(fail = false) ~buyer ~want ~steps () =
  let remaining = ref want in
  let entry = ref 0 in
  let log = ref [] in
  let lot_step j ctx =
    pace ();
    if fail && j = steps then raise Txn_effect.Abort_requested;
    if !remaining > 0 then
      match cheapest_lot ctx with
      | None ->
          if j = steps then raise Txn_effect.Abort_requested (* market ran dry *)
      | Some lot ->
          let row = Executor.read_exn ctx "sell_orders" [ v_int lot ] in
          let price = as_int row.(1) and avail = as_int row.(2) in
          let take = min !remaining avail in
          if take > 0 then begin
            Executor.set_column ctx "sell_orders" [ v_int lot ] "shares" (v_int (avail - take));
            incr entry;
            Executor.insert ctx "ledger"
              [| v_int buyer; v_int !entry; v_int lot; v_int price; v_int take |];
            remaining := !remaining - take;
            log := (price, take) :: !log
          end
  in
  let inst =
    Program.instance ~def:buy_type
      ~steps:(List.init steps (fun i -> (step_lot, lot_step (i + 1))))
      ~footprints:(fun _ -> [ (Mode.IX, Rid.Table "sell_orders"); (Mode.IX, Rid.Table "ledger") ])
      ~compensate:(fun ctx ~completed -> return_shares ~buyer ctx ~completed)
      ~comp_area:(fun () -> [ ("buyer", v_int buyer) ])
      ()
  in
  (inst, log)

(* ------------------------------------------------------------------ *)
(* Benchmark surface *)

type input =
  | Buy of { buyer : int; want : int; fail : bool }
  | Quote (* READ COMMITTED glance at the top of the book *)

let txn_name = function Buy _ -> "st_buy" | Quote -> "st_quote"
let forced_abort = function Buy { fail; _ } -> fail | Quote -> false

let buyer_seq = Atomic.make 1

type env = { gen : Prng.t; abort_rate : float; pace : unit -> unit }

let make_env ?(pace = fun () -> ()) ~abort_rate ~mix ~seed () =
  (match mix with
  | None | Some "standard" -> ()
  | Some m -> failwith (Printf.sprintf "stock-trading: unknown mix %S" m));
  { gen = Prng.create ~seed; abort_rate; pace }

let split_env env = { env with gen = Prng.split env.gen }

let gen_input env =
  let g = env.gen in
  if Prng.int g 100 < 80 then
    Buy
      {
        buyer = Atomic.fetch_and_add buyer_seq 1;
        want = 5 + Prng.int g 45;
        fail = Prng.chance g env.abort_rate;
      }
  else Quote

let reset_global () =
  Atomic.set buyer_seq 1;
  register_replay ()

let quote_body ctx = ignore (cheapest_lot ctx)

let run_acc ?options ?stop eng env input =
  match input with
  | Buy { buyer; want; fail } ->
      let inst, _ = buy ~pace:env.pace ~fail ~buyer ~want ~steps:3 () in
      Runtime.run ?options ?stop eng inst
  | Quote ->
      W.Run.read_committed ?stop ~txn_type:"st_quote"
        ~step_type:Program.legacy_step_id eng quote_body

let run_flat ?stop eng env input =
  match input with
  | Buy { buyer; want; fail } ->
      W.Run.flat ?stop ~txn_type:"st_buy" eng (fun ctx ->
          let remaining = ref want and entry = ref 0 in
          let attempt j =
            env.pace ();
            if fail && j = 3 then raise Txn_effect.Abort_requested;
            if !remaining > 0 then
              match cheapest_lot ctx with
              | None -> if j = 3 then raise Txn_effect.Abort_requested
              | Some lot ->
                  let row = Executor.read_exn ctx "sell_orders" [ v_int lot ] in
                  let price = as_int row.(1) and avail = as_int row.(2) in
                  let take = min !remaining avail in
                  if take > 0 then begin
                    Executor.set_column ctx "sell_orders" [ v_int lot ] "shares"
                      (v_int (avail - take));
                    incr entry;
                    Executor.insert ctx "ledger"
                      [| v_int buyer; v_int !entry; v_int lot; v_int price; v_int take |];
                    remaining := !remaining - take
                  end
          in
          attempt 1; attempt 2; attempt 3)
  | Quote ->
      W.Run.flat ?stop ~txn_type:"st_quote" eng quote_body

(* ------------------------------------------------------------------ *)
(* Invariants *)

let consistency db =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let sell = Database.table db "sell_orders" in
  let ledger = Database.table db "ledger" in
  let on_book = Table.fold (fun _ row acc -> acc + as_int row.(2)) sell 0 in
  let bought = Table.fold (fun _ row acc -> acc + as_int row.(4)) ledger 0 in
  let n_lots = Table.cardinality sell in
  if on_book + bought <> n_lots * init_shares then
    add "stock_trading: on-book %d + bought %d != initial %d" on_book bought
      (n_lots * init_shares);
  Table.iter
    (fun _ row ->
      if as_int row.(2) < 0 then
        add "stock_trading: lot %d oversold (%d)" (as_int row.(0)) (as_int row.(2)))
    sell;
  (* every ledger row names a real lot and paid that lot's price *)
  Table.iter
    (fun _ row ->
      let lot = as_int row.(2) in
      match Table.get sell [ v_int lot ] with
      | None -> add "stock_trading: ledger names unknown lot %d" lot
      | Some l ->
          if as_int l.(1) <> as_int row.(3) then
            add "stock_trading: buyer %d paid %d for lot %d priced %d" (as_int row.(0))
              (as_int row.(3)) lot (as_int l.(1)))
    ledger;
  List.rev !violations

(* ------------------------------------------------------------------ *)

let make (spec : W.spec) : W.t =
  let lots = lots_of_scale spec.W.scale in
  let abort_rate = Option.value ~default:0.02 spec.W.abort_rate in
  let mix = spec.W.mix in
  (module struct
    let name = "stock-trading"
    let describe = "multi-lot buys with no interstep assertions; histories need not be CSR"
    let conflict_shape = "all buys chase the cheapest lot; pure write-write contention"

    type nonrec input = input
    type nonrec env = env

    let populate ~seed = populate ~lots ~seed
    let make_env ?pace ~seed () = make_env ?pace ~abort_rate ~mix ~seed ()
    let split_env = split_env
    let reset_global = reset_global
    let gen_input = gen_input
    let txn_name = txn_name
    let forced_abort = forced_abort
    let workload = workload
    let interference = interference
    let semantics = semantics
    let run_flat = run_flat
    let run_acc = run_acc
    let consistency = consistency
    let extras () = []
  end : W.S)
