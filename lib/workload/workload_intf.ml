(* The first-class workload surface: everything a driver, bench mode or
   crash harness needs to run a benchmark is bundled into one module value
   — schema population, environment/input generation, the decomposed
   transaction programs with their declared footprints, the design-time
   interference table (already folded into [semantics]), flat strict-2PL
   and assertional run functions, the workload's own consistency
   invariants, and any extra counters the workload keeps on the side.

   TPC-C ([Acc_tpcc.Tpcc_workload]) is the reference instance; SmallBank,
   TATP, hotspot and the long-running-reader scenario live next door in
   this library.  Drivers unpack with [let module W = (val w)] and never
   mention a concrete workload again. *)

module Database = Acc_relation.Database
module Program = Acc_core.Program
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Fault = Acc_fault.Fault

(* ------------------------------------------------------------------ *)
(* Construction parameters *)

type spec = {
  scale : int;      (** dataset scale knob; the TPC-C analogue is warehouses *)
  skew : float;     (** access skew in [0,1): Zipf theta where meaningful *)
  mix : string option;  (** named transaction mix; [None] = the default *)
  abort_rate : float option;
      (** probability that a generated transaction is flagged to fail at
          its last step (exercising compensation); [None] = workload
          default *)
}

let default_spec = { scale = 1; skew = 0.; mix = None; abort_rate = None }

(* ------------------------------------------------------------------ *)
(* The interface *)

module type S = sig
  val name : string
  val describe : string
  (** One-line summary for [--workload] listings. *)

  val conflict_shape : string
  (** Short label for docs/bench tables, e.g. "write-skew on two balances". *)

  type input
  (** One generated transaction request: all randomness is drawn at
      generation time, never during execution, so a crash harness can
      re-execute the same input deterministically. *)

  type env
  (** Per-worker generation state (PRNG, pacing hook, mix weights). *)

  val populate : seed:int -> Database.t
  (** Fresh database at the spec's scale. *)

  val make_env : ?pace:(unit -> unit) -> seed:int -> unit -> env
  (** [pace] is called at the workload's designated interleaving points
      inside transaction bodies (drivers install think-time or
      [Txn_effect.yield] here). *)

  val split_env : env -> env
  (** Independent stream for another worker (PRNG split). *)

  val reset_global : unit -> unit
  (** Reset process-wide state (surrogate-id sequences, shadow-lock
      counters) and make sure the workload's {!Acc_core.Replay} handlers
      are registered.  Crash harnesses call this once per fresh run. *)

  val gen_input : env -> input
  val txn_name : input -> string

  val forced_abort : input -> bool
  (** The input was generated flagged to fail at its last step (TPC-C's
      1%% aborted New-Orders); drivers count its compensation as a forced
      abort, not an anomaly. *)

  val workload : Program.workload
  (** The design-time step/assertion declarations, for step-histogram
      labels and conflict attribution. *)

  val interference : Interference.t
  val semantics : Mode.semantics

  val run_flat :
    ?stop:(unit -> bool) -> Executor.t -> env -> input -> [ `Committed | `Aborted ]
  (** The conventional comparator: same body, one flat transaction under
      strict 2PL, retried on deadlock/timeout until committed or [stop]. *)

  val run_acc :
    ?options:Runtime.options ->
    ?stop:(unit -> bool) ->
    Executor.t -> env -> input -> Runtime.outcome
  (** The decomposed assertional execution. *)

  val consistency : Database.t -> string list
  (** The workload's invariants over a quiescent database; each violated
      condition yields one message.  Empty = consistent. *)

  val extras : unit -> (string * float) list
  (** Workload-side counters to surface in reports (e.g. the
      long-reader's shadow predicate-lock conflict tallies). *)
end

type t = (module S)

(* ------------------------------------------------------------------ *)
(* Step labeling, generic over any workload's Program declarations *)

module Step_info = struct
  type info = {
    label : int -> string;
    txn_type : int -> string option;
    max_step_id : int;
  }

  let of_workload (w : Program.workload) =
    let label id =
      if id = Program.legacy_step_id then "legacy"
      else
        match Program.find_step w id with
        | Some sd -> Printf.sprintf "%s.%s" sd.Program.sd_txn_type sd.Program.sd_name
        | None -> Printf.sprintf "step %d" id
    in
    let txn_type id =
      match Program.find_step w id with
      | Some sd -> Some sd.Program.sd_txn_type
      | None -> None
    in
    { label; txn_type; max_step_id = Program.max_step_id w }
end

(* ------------------------------------------------------------------ *)
(* Shared run-loop skeletons (the retry protocol every workload's
   [run_flat] and READ COMMITTED transactions follow; mirrors the TPC-C
   originals in lib/tpcc/txns.ml) *)

module Run = struct
  (* One flat transaction under conventional locking: retry on
     deadlock/timeout/injected step fault, honor Abort_requested, and let
     simulated crashes propagate without logging an abort (recovery must
     see the loser). *)
  let flat ?stop ~txn_type eng body =
    let stopped () = match stop with Some f -> f () | None -> false in
    let rec attempt n =
      let ctx = Executor.begin_txn eng ~txn_type ~multi_step:false in
      try
        Fault.step_trip ();
        body ctx;
        Executor.commit ctx;
        `Committed
      with
      | Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout | Fault.Step_fault ->
          Executor.abort_physical ctx;
          if stopped () then `Aborted
          else begin
            Txn_effect.yield ~attempt:n ();
            attempt (n + 1)
          end
      | Txn_effect.Abort_requested ->
          Executor.abort_physical ctx;
          `Aborted
      | e when not (Fault.is_crash e) ->
          Executor.abort_physical ctx;
          raise e
    in
    attempt 1

  (* READ COMMITTED single-step read transaction: short read locks, no
     assertional locks, retried like [flat] but reported as a Runtime
     outcome so run_acc dispatchers can use it directly. *)
  let read_committed ?stop ~txn_type ~step_type eng body =
    let stopped () = match stop with Some f -> f () | None -> false in
    let rec attempt n =
      let ctx = Executor.begin_txn eng ~txn_type ~multi_step:false in
      Executor.set_step ctx ~step_type ~step_index:1;
      try
        Fault.step_trip ();
        body ctx;
        Executor.commit ctx;
        Runtime.Committed
      with Txn_effect.Deadlock_victim | Txn_effect.Lock_timeout | Fault.Step_fault ->
        Executor.abort_physical ctx;
        if stopped () then Runtime.Compensated { completed_steps = 0 }
        else begin
          Txn_effect.yield ~attempt:n ();
          attempt (n + 1)
        end
    in
    attempt 1
end

(* ------------------------------------------------------------------ *)
(* Registry *)

module Registry = struct
  type entry = { r_name : string; r_doc : string; r_make : spec -> t }

  let entries : entry list ref = ref []

  let register ~name ~doc make =
    entries := { r_name = name; r_doc = doc; r_make = make }
                :: List.filter (fun e -> e.r_name <> name) !entries

  let find name =
    List.find_opt (fun e -> e.r_name = name) !entries
    |> Option.map (fun e -> e.r_make)

  let names () =
    List.map (fun e -> (e.r_name, e.r_doc)) !entries
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end
