(* SmallBank (Alonso et al., as catalogued by "Alone Together"): five
   short banking transactions over per-customer saving/checking balances.
   The interesting conflict shape is {e write-skew}: [write_check] reads
   both balances, decides the funds suffice, then deducts from checking in
   a later step.  Under snapshot-style weakenings two write_checks on the
   same customer both pass the check and jointly overdraw — the classic
   anomaly.  Here the interstep assertion [a_wc_funds] ("the funds I
   verified are still there") keeps the decision sound: foreign deposits
   are declared compatible (monotone increase cannot falsify it) while
   foreign withdrawals block — exactly the paper's §3.2 admit-more /
   stay-safe trade.  [interference_weakened] deliberately mis-declares the
   withdrawal steps as compatible too; the directed test drives two
   write_checks through it and proves {!consistency} catches the overdraw
   the correct table prevents. *)

module W = Workload_intf
module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Database = Acc_relation.Database
module Program = Acc_core.Program
module Assertion = Acc_core.Assertion
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
module Prng = Acc_util.Prng
open Value

let fnum = Value.number
let as_int = Value.as_int

(* ------------------------------------------------------------------ *)
(* Schema and population *)

let init_saving = 500.0
let init_checking = 100.0
let accounts_of_scale scale = 20 * max 1 scale

let schemas =
  let c = Schema.col in
  [
    Schema.make ~name:"account" ~key:[ "a_id" ] [ c "a_id" Tint; c "a_name" Tstr ];
    Schema.make ~name:"saving" ~key:[ "s_id" ] [ c "s_id" Tint; c "s_bal" Tfloat ];
    Schema.make ~name:"checking" ~key:[ "c_id" ] [ c "c_id" Tint; c "c_bal" Tfloat ];
    (* append-only journal: one row per (account, delta); instance-unique
       surrogate keys, hence Fresh in every footprint that mentions it *)
    Schema.make ~name:"sb_audit" ~key:[ "au_id" ]
      [ c "au_id" Tint; c "au_op" Tstr; c "au_acct" Tint; c "au_delta" Tfloat ];
  ]

let populate ~accounts ~seed =
  let g = Prng.create ~seed in
  let db = Database.create () in
  List.iter (fun s -> ignore (Database.create_table db s)) schemas;
  let acct_t = Database.table db "account" in
  let sav_t = Database.table db "saving" in
  let chk_t = Database.table db "checking" in
  for a = 1 to accounts do
    Acc_relation.Table.insert acct_t [| Int a; Str (Prng.alpha_string g ~min:4 ~max:10) |];
    Acc_relation.Table.insert sav_t [| Int a; Float init_saving |];
    Acc_relation.Table.insert chk_t [| Int a; Float init_checking |]
  done;
  db

(* ------------------------------------------------------------------ *)
(* Inputs and generation *)

type input =
  | Balance of { acct : int }
  | Deposit of { acct : int; amount : float }
  | Transact of { acct : int; amount : float }  (* savings; may be negative *)
  | Amalgamate of { src : int; dst : int; fail : bool }
  | Write_check of { acct : int; amount : float; fail : bool }

let txn_name = function
  | Balance _ -> "sb_balance"
  | Deposit _ -> "sb_deposit"
  | Transact _ -> "sb_transact"
  | Amalgamate _ -> "sb_amalgamate"
  | Write_check _ -> "sb_write_check"

let forced_abort = function
  | Amalgamate { fail; _ } | Write_check { fail; _ } -> fail
  | Balance _ | Deposit _ | Transact _ -> false

type env = {
  gen : Prng.t;
  n_accounts : int;
  zipf : Prng.zipf option;  (* account-selection skew; None = uniform *)
  abort_rate : float;
  write_skew_mix : bool;  (* "write-skew" mix: write_check + deposit only *)
  pace : unit -> unit;
}

let make_env ?(pace = fun () -> ()) ~accounts ~skew ~abort_rate ~mix ~seed () =
  let write_skew_mix =
    match mix with
    | Some "write-skew" -> true
    | Some "standard" | None -> false
    | Some m -> failwith (Printf.sprintf "smallbank: unknown mix %S" m)
  in
  {
    gen = Prng.create ~seed;
    n_accounts = accounts;
    zipf = (if skew > 0. then Some (Prng.zipf ~n:accounts ~theta:skew) else None);
    abort_rate;
    write_skew_mix;
    pace;
  }

let split_env env = { env with gen = Prng.split env.gen }

let pick_acct env =
  match env.zipf with
  | Some z -> 1 + Prng.zipf_draw env.gen z
  | None -> 1 + Prng.int env.gen env.n_accounts

let gen_input env =
  let g = env.gen in
  let acct = pick_acct env in
  let fail () = Prng.chance g env.abort_rate in
  if env.write_skew_mix then
    if Prng.int g 100 < 30 then
      Deposit { acct; amount = float_of_int (1 + Prng.int g 100) }
    else Write_check { acct; amount = float_of_int (1 + Prng.int g 500); fail = fail () }
  else
    let roll = Prng.int g 100 in
    if roll < 15 then Balance { acct }
    else if roll < 40 then Deposit { acct; amount = float_of_int (1 + Prng.int g 100) }
    else if roll < 60 then
      Transact { acct; amount = float_of_int (Prng.int_in g (-50) 150) }
    else if roll < 75 then
      let dst = 1 + ((acct + Prng.int g (env.n_accounts - 1)) mod env.n_accounts) in
      Amalgamate { src = acct; dst; fail = fail () }
    else Write_check { acct; amount = float_of_int (1 + Prng.int g 500); fail = fail () }

(* ------------------------------------------------------------------ *)
(* Surrogate audit keys (process-wide, reset per harness run) *)

let au_seq = Atomic.make 1_000_000
let next_au () = 1 + Atomic.fetch_and_add au_seq 1

(* ------------------------------------------------------------------ *)
(* Static decomposition *)

let fp = Footprint.make
let cols cs = Footprint.Columns cs
let fresh = Footprint.Fresh
let tab t = Rid.Table t
let tup t k = Rid.Tuple (t, k)

let bal_read =
  Program.step ~id:1 ~name:"read-both" ~txn_type:"sb_balance" ~index:1
    ~reads:[ fp "saving" (cols [ "s_bal" ]); fp "checking" (cols [ "c_bal" ]) ]
    ~writes:[] ()

let balance_type = Program.txn_type ~name:"sb_balance" ~steps:[ bal_read ] ~assertions:[] ()

let dc_apply =
  Program.step ~id:2 ~name:"credit" ~txn_type:"sb_deposit" ~index:1
    ~reads:[ fp "checking" (cols [ "c_bal" ]) ]
    ~writes:[ fp "checking" (cols [ "c_bal" ]); fp ~fresh "sb_audit" Footprint.All_columns ]
    ()

let dc_comp =
  Program.step ~id:3 ~name:"uncredit" ~txn_type:"sb_deposit" ~index:0 ~reads:[]
    ~writes:[ fp "checking" (cols [ "c_bal" ]); fp ~fresh "sb_audit" Footprint.All_columns ]
    ()

let deposit_type =
  Program.txn_type ~name:"sb_deposit" ~steps:[ dc_apply ] ~comp:dc_comp ~assertions:[] ()

let ts_apply =
  Program.step ~id:4 ~name:"adjust" ~txn_type:"sb_transact" ~index:1
    ~reads:[ fp "saving" (cols [ "s_bal" ]) ]
    ~writes:[ fp "saving" (cols [ "s_bal" ]); fp ~fresh "sb_audit" Footprint.All_columns ]
    ()

let ts_comp =
  Program.step ~id:5 ~name:"unadjust" ~txn_type:"sb_transact" ~index:0 ~reads:[]
    ~writes:[ fp "saving" (cols [ "s_bal" ]); fp ~fresh "sb_audit" Footprint.All_columns ]
    ()

let transact_type =
  Program.txn_type ~name:"sb_transact" ~steps:[ ts_apply ] ~comp:ts_comp ~assertions:[] ()

let wc_check =
  Program.step ~id:6 ~name:"verify-funds" ~txn_type:"sb_write_check" ~index:1
    ~reads:[ fp "saving" (cols [ "s_bal" ]); fp "checking" (cols [ "c_bal" ]) ]
    ~writes:[] ()

let wc_deduct =
  Program.step ~id:7 ~name:"deduct" ~txn_type:"sb_write_check" ~index:2
    ~reads:[]
    ~writes:[ fp "checking" (cols [ "c_bal" ]); fp ~fresh "sb_audit" Footprint.All_columns ]
    ()

let wc_comp =
  Program.step ~id:8 ~name:"void-check" ~txn_type:"sb_write_check" ~index:0 ~reads:[]
    ~writes:[ fp "checking" (cols [ "c_bal" ]); fp ~fresh "sb_audit" Footprint.All_columns ]
    ()

(* pre(S_deduct): "the balances I verified still cover the check."
   References both shared balances — the write-skew window. *)
let a_wc_funds =
  Assertion.make ~id:1 ~name:"wc_funds_hold" ~txn_type:"sb_write_check" ~pre_of:2 ~until:2
    ~refs:[ fp "saving" (cols [ "s_bal" ]); fp "checking" (cols [ "c_bal" ]) ]

let write_check_type =
  Program.txn_type ~name:"sb_write_check" ~steps:[ wc_check; wc_deduct ] ~comp:wc_comp
    ~assertions:[ a_wc_funds ] ()

let am_take =
  Program.step ~id:9 ~name:"drain-src" ~txn_type:"sb_amalgamate" ~index:1
    ~reads:[ fp "saving" (cols [ "s_bal" ]); fp "checking" (cols [ "c_bal" ]) ]
    ~writes:[ fp "saving" (cols [ "s_bal" ]); fp "checking" (cols [ "c_bal" ]) ]
    ()

let am_put =
  Program.step ~id:10 ~name:"credit-dst" ~txn_type:"sb_amalgamate" ~index:2
    ~reads:[]
    ~writes:[ fp "checking" (cols [ "c_bal" ]); fp ~fresh "sb_audit" Footprint.All_columns ]
    ()

let am_comp =
  Program.step ~id:11 ~name:"restore" ~txn_type:"sb_amalgamate" ~index:0 ~reads:[]
    ~writes:
      [
        fp "saving" (cols [ "s_bal" ]);
        fp "checking" (cols [ "c_bal" ]);
        fp ~fresh "sb_audit" Footprint.All_columns;
      ]
    ()

(* "the money I drained from src is accounted for until it lands in dst" *)
let a_am_moved =
  Assertion.make ~id:2 ~name:"am_drained_intact" ~txn_type:"sb_amalgamate" ~pre_of:2 ~until:2
    ~refs:[ fp "saving" (cols [ "s_bal" ]); fp "checking" (cols [ "c_bal" ]) ]

let amalgamate_type =
  Program.txn_type ~name:"sb_amalgamate" ~steps:[ am_take; am_put ] ~comp:am_comp
    ~assertions:[ a_am_moved ] ()

let workload =
  Program.workload
    [ balance_type; deposit_type; transact_type; write_check_type; amalgamate_type ]

(* Hand-proved compatibilities: a foreign deposit only increases a checking
   balance, so it cannot falsify "the funds I verified still cover the
   check" nor "the money I drained is accounted for" — ACC admits it where
   2PL would block.  Withdrawals (transact, another check's deduct, a
   drain) genuinely can falsify both and stay interfering. *)
let compatible_true =
  [
    (dc_apply.Program.sd_id, a_wc_funds.Assertion.id);
    (dc_apply.Program.sd_id, a_am_moved.Assertion.id);
  ]

let interference = Interference.build ~compatible:compatible_true workload
let semantics = Interference.semantics interference

(* The deliberately broken table for the directed write-skew test: it also
   declares the withdrawal steps — and the check-voiding compensation that
   shadows a deduct's exposed write — compatible with [a_wc_funds], i.e. it
   "proves" a claim that is false.  Two concurrent write_checks then both
   pass verify-funds and jointly overdraw — the anomaly {!consistency}
   must catch.  (Without the [wc_comp] pair the deducts still serialize:
   each deduct's Comp lock blocks on the other's held assertion.) *)
let interference_weakened =
  Interference.build
    ~compatible:
      (compatible_true
      @ [
          (ts_apply.Program.sd_id, a_wc_funds.Assertion.id);
          (wc_deduct.Program.sd_id, a_wc_funds.Assertion.id);
          (wc_comp.Program.sd_id, a_wc_funds.Assertion.id);
          (am_take.Program.sd_id, a_wc_funds.Assertion.id);
        ])
    workload

let semantics_weakened = Interference.semantics interference_weakened

(* ------------------------------------------------------------------ *)
(* Bodies (idempotent under step retry: workspaces are assigned, never
   accumulated, and all randomness lives in the input) *)

let audit ctx ~au ~op ~acct ~delta =
  Executor.insert ctx "sb_audit" [| Int au; Str op; Int acct; Float delta |]

type wc_ws = { mutable ok : bool; mutable au : int }
type am_ws = { mutable ms : float; mutable mc : float; mutable au : int }
type one_ws = { mutable au1 : int }

let bal_body env ~acct ctx =
  let s = Executor.read_exn ctx "saving" [ Int acct ] in
  env.pace ();
  let c = Executor.read_exn ctx "checking" [ Int acct ] in
  ignore (fnum s.(1) +. fnum c.(1))

let dc_body env ~acct ~amount (ws : one_ws) ctx =
  ignore
    (Executor.update ctx "checking" [ Int acct ] (fun row ->
         row.(1) <- Float (fnum row.(1) +. amount);
         row));
  env.pace ();
  ws.au1 <- next_au ();
  audit ctx ~au:ws.au1 ~op:"dc" ~acct ~delta:amount

let ts_body env ~acct ~amount (ws : one_ws) ctx =
  let row = Executor.read_exn ctx "saving" [ Int acct ] in
  if fnum row.(1) +. amount < 0. then raise Txn_effect.Abort_requested;
  ignore
    (Executor.update ctx "saving" [ Int acct ] (fun row ->
         row.(1) <- Float (fnum row.(1) +. amount);
         row));
  env.pace ();
  ws.au1 <- next_au ();
  audit ctx ~au:ws.au1 ~op:"ts" ~acct ~delta:amount

let wc_check_body env ~acct ~amount (ws : wc_ws) ctx =
  let s = Executor.read_exn ctx "saving" [ Int acct ] in
  env.pace ();
  let c = Executor.read_exn ctx "checking" [ Int acct ] in
  ws.ok <- fnum s.(1) +. fnum c.(1) >= amount

let wc_deduct_body env ~acct ~amount ~fail (ws : wc_ws) ctx =
  if fail then raise Txn_effect.Abort_requested;
  if not ws.ok then raise Txn_effect.Abort_requested;
  (* no re-check: pre(S_deduct) — the assertional lock — is what makes the
     stale decision sound.  That is the point of the workload. *)
  ignore
    (Executor.update ctx "checking" [ Int acct ] (fun row ->
         row.(1) <- Float (fnum row.(1) -. amount);
         row));
  env.pace ();
  ws.au <- next_au ();
  audit ctx ~au:ws.au ~op:"wc" ~acct ~delta:(-.amount)

let am_take_body env ~src (ws : am_ws) ctx =
  let s = Executor.update ctx "saving" [ Int src ] (fun row ->
      ws.ms <- fnum row.(1);
      row.(1) <- Float 0.;
      row)
  in
  ignore s;
  env.pace ();
  ignore
    (Executor.update ctx "checking" [ Int src ] (fun row ->
         ws.mc <- fnum row.(1);
         row.(1) <- Float 0.;
         row))

let am_put_body env ~src ~dst ~fail (ws : am_ws) ctx =
  if fail then raise Txn_effect.Abort_requested;
  let total = ws.ms +. ws.mc in
  ignore
    (Executor.update ctx "checking" [ Int dst ] (fun row ->
         row.(1) <- Float (fnum row.(1) +. total);
         row));
  env.pace ();
  ws.au <- next_au ();
  audit ctx ~au:ws.au ~op:"am_out" ~acct:src ~delta:(-.total);
  audit ctx ~au:(ws.au + 1000000000) ~op:"am_in" ~acct:dst ~delta:total

(* ------------------------------------------------------------------ *)
(* Compensations (and their crash-replay handlers, driven purely by the
   durable work area) *)

let dc_compensate ~acct ~amount ~au ctx ~completed =
  if completed >= 1 then begin
    ignore
      (Executor.update ctx "checking" [ Int acct ] (fun row ->
           row.(1) <- Float (fnum row.(1) -. amount);
           row));
    Executor.delete ctx "sb_audit" [ Int au ]
  end

let ts_compensate ~acct ~amount ~au ctx ~completed =
  if completed >= 1 then begin
    ignore
      (Executor.update ctx "saving" [ Int acct ] (fun row ->
           row.(1) <- Float (fnum row.(1) -. amount);
           row));
    Executor.delete ctx "sb_audit" [ Int au ]
  end

let wc_compensate ~acct ~amount ~au ctx ~completed =
  (* step 1 is read-only; only a completed deduct leaves anything to undo *)
  if completed >= 2 then begin
    ignore
      (Executor.update ctx "checking" [ Int acct ] (fun row ->
           row.(1) <- Float (fnum row.(1) +. amount);
           row));
    Executor.delete ctx "sb_audit" [ Int au ]
  end

let am_compensate ~src ~dst ~ms ~mc ~au ctx ~completed =
  if completed >= 2 then begin
    ignore
      (Executor.update ctx "checking" [ Int dst ] (fun row ->
           row.(1) <- Float (fnum row.(1) -. (ms +. mc));
           row));
    Executor.delete ctx "sb_audit" [ Int au ];
    Executor.delete ctx "sb_audit" [ Int (au + 1000000000) ]
  end;
  if completed >= 1 then begin
    ignore
      (Executor.update ctx "saving" [ Int src ] (fun row ->
           row.(1) <- Float (fnum row.(1) +. ms);
           row));
    ignore
      (Executor.update ctx "checking" [ Int src ] (fun row ->
           row.(1) <- Float (fnum row.(1) +. mc);
           row))
  end

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> failwith (Printf.sprintf "smallbank replay: missing area field %s" name)

let int_field area name = as_int (field area name)
let float_field area name = fnum (field area name)

let register_replay () =
  Replay.register ~txn_type:"sb_deposit" ~step_type:dc_comp.Program.sd_id
    (fun ctx ~completed ~area ->
      dc_compensate ~acct:(int_field area "acct") ~amount:(float_field area "amount")
        ~au:(int_field area "au") ctx ~completed);
  Replay.register ~txn_type:"sb_transact" ~step_type:ts_comp.Program.sd_id
    (fun ctx ~completed ~area ->
      ts_compensate ~acct:(int_field area "acct") ~amount:(float_field area "amount")
        ~au:(int_field area "au") ctx ~completed);
  Replay.register ~txn_type:"sb_write_check" ~step_type:wc_comp.Program.sd_id
    (fun ctx ~completed ~area ->
      wc_compensate ~acct:(int_field area "acct") ~amount:(float_field area "amount")
        ~au:(int_field area "au") ctx ~completed);
  Replay.register ~txn_type:"sb_amalgamate" ~step_type:am_comp.Program.sd_id
    (fun ctx ~completed ~area ->
      am_compensate ~src:(int_field area "src") ~dst:(int_field area "dst")
        ~ms:(float_field area "ms") ~mc:(float_field area "mc") ~au:(int_field area "au") ctx
        ~completed)

let reset_global () =
  Atomic.set au_seq 1_000_000;
  register_replay ()

(* ------------------------------------------------------------------ *)
(* Instances *)

let balance_instance env ~acct =
  Program.instance ~def:balance_type
    ~steps:[ (bal_read, fun ctx -> bal_body env ~acct ctx) ]
    ~footprints:(fun _ ->
      [
        (Mode.IS, tab "saving"); (Mode.S, tup "saving" [ Int acct ]);
        (Mode.IS, tab "checking"); (Mode.S, tup "checking" [ Int acct ]);
      ])
    ()

let deposit_instance env ~acct ~amount =
  let ws = { au1 = 0 } in
  Program.instance ~def:deposit_type
    ~steps:[ (dc_apply, fun ctx -> dc_body env ~acct ~amount ws ctx) ]
    ~footprints:(fun _ ->
      [
        (Mode.IX, tab "checking"); (Mode.X, tup "checking" [ Int acct ]);
        (Mode.IX, tab "sb_audit");
      ])
    ~compensate:(fun ctx ~completed -> dc_compensate ~acct ~amount ~au:ws.au1 ctx ~completed)
    ~comp_area:(fun () ->
      [ ("acct", Int acct); ("amount", Float amount); ("au", Int ws.au1) ])
    ()

let transact_instance env ~acct ~amount =
  let ws = { au1 = 0 } in
  Program.instance ~def:transact_type
    ~steps:[ (ts_apply, fun ctx -> ts_body env ~acct ~amount ws ctx) ]
    ~footprints:(fun _ ->
      [
        (Mode.IX, tab "saving"); (Mode.X, tup "saving" [ Int acct ]);
        (Mode.IX, tab "sb_audit");
      ])
    ~compensate:(fun ctx ~completed -> ts_compensate ~acct ~amount ~au:ws.au1 ctx ~completed)
    ~comp_area:(fun () ->
      [ ("acct", Int acct); ("amount", Float amount); ("au", Int ws.au1) ])
    ()

let write_check_instance env ~acct ~amount ~fail =
  let ws = { ok = false; au = 0 } in
  Program.instance ~def:write_check_type
    ~steps:
      [
        (wc_check, fun ctx -> wc_check_body env ~acct ~amount ws ctx);
        (wc_deduct, fun ctx -> wc_deduct_body env ~acct ~amount ~fail ws ctx);
      ]
    ~assertions:[ { Program.ai_assertion = a_wc_funds; ai_from = 2; ai_until = 2; ai_check = None } ]
    ~footprints:(fun j ->
      if j = 1 then
        [
          (Mode.IS, tab "saving"); (Mode.S, tup "saving" [ Int acct ]);
          (Mode.IS, tab "checking"); (Mode.S, tup "checking" [ Int acct ]);
        ]
      else if j = 2 then
        [
          (Mode.IX, tab "checking"); (Mode.X, tup "checking" [ Int acct ]);
          (Mode.IX, tab "sb_audit");
        ]
      else [])
    ~compensate:(fun ctx ~completed -> wc_compensate ~acct ~amount ~au:ws.au ctx ~completed)
    ~comp_area:(fun () -> [ ("acct", Int acct); ("amount", Float amount); ("au", Int ws.au) ])
    ()

let amalgamate_instance env ~src ~dst ~fail =
  let ws = { ms = 0.; mc = 0.; au = 0 } in
  Program.instance ~def:amalgamate_type
    ~steps:
      [
        (am_take, fun ctx -> am_take_body env ~src ws ctx);
        (am_put, fun ctx -> am_put_body env ~src ~dst ~fail ws ctx);
      ]
    ~assertions:[ { Program.ai_assertion = a_am_moved; ai_from = 2; ai_until = 2; ai_check = None } ]
    ~footprints:(fun j ->
      if j = 1 then
        [
          (Mode.IX, tab "saving"); (Mode.X, tup "saving" [ Int src ]);
          (Mode.IX, tab "checking"); (Mode.X, tup "checking" [ Int src ]);
        ]
      else if j = 2 then
        [
          (Mode.IX, tab "checking"); (Mode.X, tup "checking" [ Int dst ]);
          (Mode.IX, tab "sb_audit");
        ]
      else [])
    ~compensate:(fun ctx ~completed ->
      am_compensate ~src ~dst ~ms:ws.ms ~mc:ws.mc ~au:ws.au ctx ~completed)
    ~comp_area:(fun () ->
      [
        ("src", Int src); ("dst", Int dst); ("ms", Float ws.ms); ("mc", Float ws.mc);
        ("au", Int ws.au);
      ])
    ()

let instance env input =
  match input with
  | Balance { acct } -> balance_instance env ~acct
  | Deposit { acct; amount } -> deposit_instance env ~acct ~amount
  | Transact { acct; amount } -> transact_instance env ~acct ~amount
  | Write_check { acct; amount; fail } -> write_check_instance env ~acct ~amount ~fail
  | Amalgamate { src; dst; fail } -> amalgamate_instance env ~src ~dst ~fail

let run_acc ?options ?stop eng env input = Runtime.run ?options ?stop eng (instance env input)

(* ------------------------------------------------------------------ *)
(* Flat (strict-2PL) comparator: same bodies, one transaction *)

let flat env input ctx =
  match input with
  | Balance { acct } -> bal_body env ~acct ctx
  | Deposit { acct; amount } -> dc_body env ~acct ~amount { au1 = 0 } ctx
  | Transact { acct; amount } -> ts_body env ~acct ~amount { au1 = 0 } ctx
  | Write_check { acct; amount; fail } ->
      let ws = { ok = false; au = 0 } in
      wc_check_body env ~acct ~amount ws ctx;
      env.pace ();
      wc_deduct_body env ~acct ~amount ~fail ws ctx
  | Amalgamate { src; dst; fail } ->
      let ws = { ms = 0.; mc = 0.; au = 0 } in
      am_take_body env ~src ws ctx;
      env.pace ();
      am_put_body env ~src ~dst ~fail ws ctx

let run_flat ?stop eng env input =
  W.Run.flat ?stop ~txn_type:(txn_name input) eng (fun ctx -> flat env input ctx)

(* ------------------------------------------------------------------ *)
(* Invariants *)

let eps = 1e-6

let consistency db =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let sav = Database.table db "saving" in
  let chk = Database.table db "checking" in
  let audit = Database.table db "sb_audit" in
  (* per-account audit deltas *)
  let deltas = Hashtbl.create 64 in
  Acc_relation.Table.iter
    (fun _ row ->
      let acct = as_int row.(2) and d = fnum row.(3) in
      Hashtbl.replace deltas acct (d +. (Option.value ~default:0. (Hashtbl.find_opt deltas acct))))
    audit;
  Acc_relation.Table.iter
    (fun _ srow ->
      let acct = as_int srow.(0) in
      let s = fnum srow.(1) in
      let c = fnum (Acc_relation.Table.get_exn chk [ Int acct ]).(1) in
      let d = Option.value ~default:0. (Hashtbl.find_opt deltas acct) in
      (* conservation: today's balances are exactly the initial endowment
         plus the committed journal *)
      let expect = init_saving +. init_checking +. d in
      if Float.abs (s +. c -. expect) > eps then
        add "smallbank: account %d balance %.2f != endowment+journal %.2f" acct (s +. c) expect;
      (* the write-skew invariant: no overdrawn customer *)
      if s +. c < -.eps then add "smallbank: account %d overdrawn (%.2f)" acct (s +. c);
      if s < -.eps then add "smallbank: account %d negative savings (%.2f)" acct s)
    sav;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* The plugin value *)

let make (spec : W.spec) : W.t =
  let accounts = accounts_of_scale spec.W.scale in
  let abort_rate = Option.value ~default:0.02 spec.W.abort_rate in
  let skew = spec.W.skew in
  let mix = spec.W.mix in
  (module struct
    let name = "smallbank"
    let describe = "SmallBank banking mix; write-skew anomaly guarded by an interstep assertion"
    let conflict_shape = "read-two-balances/deduct-one write-skew on hot accounts"

    type nonrec input = input
    type nonrec env = env

    let populate ~seed = populate ~accounts ~seed
    let make_env ?pace ~seed () = make_env ?pace ~accounts ~skew ~abort_rate ~mix ~seed ()
    let split_env = split_env
    let reset_global = reset_global
    let gen_input = gen_input
    let txn_name = txn_name
    let forced_abort = forced_abort
    let workload = workload
    let interference = interference
    let semantics = semantics
    let run_flat = run_flat
    let run_acc = run_acc
    let consistency = consistency
    let extras () = []
  end : W.S)
