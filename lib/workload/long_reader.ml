(* Long-running readers over a partitioned ledger.  Writers ([lr_post])
   move money between two accounts of the same region in two steps —
   between the steps the books are transiently unbalanced, which is
   precisely the state a long audit scan must never observe.  Readers
   ([lr_audit]) run under the legacy full-isolation protocol
   (Runtime.run_legacy): their isolation assertional lock queues on every
   in-flight writer, and each committed scan journals the sum it saw so
   {!consistency} can prove after the fact that no torn read ever
   committed.

   The workload doubles as the multicore stress for
   [lib/lock/predicate_lock.ml]: a mutex-guarded shadow manager mirrors
   every reader as a predicate Read lock (l_region = r, or the whole
   table) and every writer step as Eq predicate Write locks, counting how
   often the 1976-style acquisition-time intersection test would have
   blocked.  The tallies surface through [extras] as
   [pl_shadow_acquires] / [pl_shadow_conflicts] — the comparator cost the
   paper positions assertional locks against, §3.2. *)

module W = Workload_intf
module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Program = Acc_core.Program
module Assertion = Acc_core.Assertion
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
module Predicate_lock = Acc_lock.Predicate_lock
module Prng = Acc_util.Prng
open Value

let fnum = Value.number
let as_int = Value.as_int

(* ------------------------------------------------------------------ *)
(* Schema and population *)

let regions = 10
let rows_of_scale scale = 100 * max 1 scale
let init_amount = 100.0

let schemas =
  let c = Schema.col in
  [
    Schema.make ~name:"ledger" ~key:[ "l_id" ]
      [ c "l_id" Tint; c "l_region" Tint; c "l_amount" Tfloat ];
    Schema.make ~name:"reader_audit" ~key:[ "ra_id" ]
      [ c "ra_id" Tint; c "ra_region" Tint; c "ra_sum" Tfloat; c "ra_rows" Tint ];
  ]

let region_of_row r = 1 + ((r - 1) mod regions)

let populate ~rows ~seed =
  ignore seed;
  let db = Database.create () in
  List.iter (fun s -> ignore (Database.create_table db s)) schemas;
  let t = Database.table db "ledger" in
  for r = 1 to rows do
    Acc_relation.Table.insert t [| Int r; Int (region_of_row r); Float init_amount |]
  done;
  db

(* expected invariant sums, derivable from the row count alone *)
let region_rows ~rows region =
  let q = rows / regions and rem = rows mod regions in
  q + (if region <= rem then 1 else 0)

(* ------------------------------------------------------------------ *)
(* The shadow predicate-lock manager *)

module Shadow = struct
  let mgr = ref (Predicate_lock.create ())
  let mu = Mutex.create ()
  let acquires = Atomic.make 0
  let conflicts = Atomic.make 0
  let enabled = Atomic.make true

  let reset () =
    Mutex.lock mu;
    mgr := Predicate_lock.create ();
    Atomic.set acquires 0;
    Atomic.set conflicts 0;
    Mutex.unlock mu

  (* non-blocking mirror: record whether the predicate system would have
     blocked, then proceed — the real isolation is the assertional locks'.
     Bodies release on their success and abort paths; a transaction that
     dies between (victimized past its retry budget) may leak its shadow
     entries, so a crude GC bounds the comparator's working set. *)
  let acquire ~txn ~mode pred =
    if Atomic.get enabled then begin
      Mutex.lock mu;
      if Predicate_lock.lock_count !mgr > 4096 then mgr := Predicate_lock.create ();
      Atomic.incr acquires;
      (match Predicate_lock.acquire !mgr ~txn ~mode ~table:"ledger" pred with
      | `Granted -> ()
      | `Conflict _ -> Atomic.incr conflicts);
      Mutex.unlock mu
    end

  let release ~txn =
    if Atomic.get enabled then begin
      Mutex.lock mu;
      Predicate_lock.release_all !mgr ~txn;
      Mutex.unlock mu
    end

  let stats () =
    [
      ("pl_shadow_acquires", float_of_int (Atomic.get acquires));
      ("pl_shadow_conflicts", float_of_int (Atomic.get conflicts));
    ]
end

(* ------------------------------------------------------------------ *)
(* Inputs *)

type input =
  | Post of { src : int; dst : int; amount : float; fail : bool }
  | Audit of { id : int; region : int option }  (* None = whole ledger *)

let txn_name = function Post _ -> "lr_post" | Audit _ -> "lr_audit"
let forced_abort = function Post { fail; _ } -> fail | Audit _ -> false

let audit_seq = Atomic.make 1_000_000
let next_audit () = 1 + Atomic.fetch_and_add audit_seq 1

type env = {
  gen : Prng.t;
  n_rows : int;
  zipf : Prng.zipf option;
  abort_rate : float;
  pace : unit -> unit;
}

let make_env ?(pace = fun () -> ()) ~rows ~skew ~abort_rate ~mix ~seed () =
  (match mix with
  | None | Some "standard" -> ()
  | Some m -> failwith (Printf.sprintf "longreader: unknown mix %S" m));
  {
    gen = Prng.create ~seed;
    n_rows = rows;
    zipf = (if skew > 0. then Some (Prng.zipf ~n:rows ~theta:skew) else None);
    abort_rate;
    pace;
  }

let split_env env = { env with gen = Prng.split env.gen }

let pick_row env =
  match env.zipf with
  | Some z -> 1 + Prng.zipf_draw env.gen z
  | None -> 1 + Prng.int env.gen env.n_rows

let gen_input env =
  let g = env.gen in
  if Prng.int g 100 < 15 then
    let region = if Prng.int g 100 < 20 then None else Some (1 + Prng.int g regions) in
    Audit { id = next_audit (); region }
  else begin
    (* both rows in one region, so region sums are invariant *)
    let src = pick_row env in
    let step = regions * (1 + Prng.int g (max 1 ((env.n_rows / regions) - 1))) in
    let dst =
      let d = src + step in
      if d <= env.n_rows then d else src - (regions * ((src - 1) / regions))
    in
    let dst = if dst = src || dst < 1 || dst > env.n_rows then src else dst in
    Post
      {
        src;
        dst;
        amount = float_of_int (1 + Prng.int g 20);
        fail = Prng.chance g env.abort_rate;
      }
  end

(* ------------------------------------------------------------------ *)
(* Static decomposition *)

let fp = Footprint.make
let cols cs = Footprint.Columns cs
let fresh = Footprint.Fresh
let tab t = Rid.Table t
let tup t k = Rid.Tuple (t, k)

let post_debit =
  Program.step ~id:1 ~name:"debit" ~txn_type:"lr_post" ~index:1
    ~reads:[ fp "ledger" (cols [ "l_amount" ]) ]
    ~writes:[ fp "ledger" (cols [ "l_amount" ]) ]
    ()

let post_credit =
  Program.step ~id:2 ~name:"credit" ~txn_type:"lr_post" ~index:2
    ~reads:[]
    ~writes:[ fp "ledger" (cols [ "l_amount" ]) ]
    ()

let post_comp =
  Program.step ~id:3 ~name:"recredit" ~txn_type:"lr_post" ~index:0 ~reads:[]
    ~writes:[ fp "ledger" (cols [ "l_amount" ]) ]
    ()

let post_type =
  Program.txn_type ~name:"lr_post" ~steps:[ post_debit; post_credit ] ~comp:post_comp
    ~assertions:[] ()

let audit_read =
  Program.step ~id:4 ~name:"region-scan" ~txn_type:"lr_audit" ~index:1
    ~reads:[ fp "ledger" (cols [ "l_region"; "l_amount" ]) ]
    ~writes:[ fp ~fresh "reader_audit" Footprint.All_columns ]
    ()

let audit_type = Program.txn_type ~name:"lr_audit" ~steps:[ audit_read ] ~assertions:[] ()

let workload = Program.workload [ post_type; audit_type ]
let interference = Interference.build workload
let semantics = Interference.semantics interference

(* ------------------------------------------------------------------ *)
(* Bodies *)

let debit_body env ~src ~amount ctx =
  Shadow.acquire ~txn:(Executor.txn_id ctx) ~mode:Predicate_lock.Write
    (Predicate.Eq ("l_id", Int src));
  ignore
    (Executor.update ctx "ledger" [ Int src ] (fun row ->
         row.(2) <- Float (fnum row.(2) -. amount);
         row));
  env.pace ()

let credit_body env ~dst ~amount ~fail ctx =
  let txn = Executor.txn_id ctx in
  if fail then begin
    Shadow.release ~txn;
    raise Txn_effect.Abort_requested
  end;
  Shadow.acquire ~txn ~mode:Predicate_lock.Write (Predicate.Eq ("l_id", Int dst));
  ignore
    (Executor.update ctx "ledger" [ Int dst ] (fun row ->
         row.(2) <- Float (fnum row.(2) +. amount);
         row));
  env.pace ();
  Shadow.release ~txn

let audit_body env ~id ~region ctx =
  let pred =
    match region with
    | Some r -> Predicate.Eq ("l_region", Int r)
    | None -> Predicate.Cmp (Predicate.Ge, "l_region", Int 0)
  in
  Shadow.acquire ~txn:(Executor.txn_id ctx) ~mode:Predicate_lock.Read pred;
  let where = match region with Some r -> Some (Predicate.Eq ("l_region", Int r)) | None -> None in
  let rows = Executor.scan ctx "ledger" ?where () in
  (* a deliberately long read: yield between per-row accumulations so the
     scan's lifetime spans many writer steps *)
  let sum = ref 0. and n = ref 0 in
  List.iter
    (fun row ->
      sum := !sum +. fnum row.(2);
      incr n;
      if !n mod 32 = 0 then env.pace ())
    rows;
  Executor.insert ctx "reader_audit"
    [| Int id; Int (match region with Some r -> r | None -> 0); Float !sum; Int !n |];
  Shadow.release ~txn:(Executor.txn_id ctx)

(* ------------------------------------------------------------------ *)
(* Compensation *)

let post_compensate ~src ~amount ctx ~completed =
  (* abort after the credit cannot happen mid-transaction (credit is the
     last step), but a crash between the final end-of-step and commit can:
     undo newest-first *)
  ignore completed;
  if completed >= 1 then
    ignore
      (Executor.update ctx "ledger" [ Int src ] (fun row ->
           row.(2) <- Float (fnum row.(2) +. amount);
           row))

let post_compensate_full ~src ~dst ~amount ctx ~completed =
  if completed >= 2 then
    ignore
      (Executor.update ctx "ledger" [ Int dst ] (fun row ->
           row.(2) <- Float (fnum row.(2) -. amount);
           row));
  post_compensate ~src ~amount ctx ~completed

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> failwith (Printf.sprintf "longreader replay: missing area field %s" name)

let register_replay () =
  Replay.register ~txn_type:"lr_post" ~step_type:post_comp.Program.sd_id
    (fun ctx ~completed ~area ->
      post_compensate_full ~src:(as_int (field area "src")) ~dst:(as_int (field area "dst"))
        ~amount:(fnum (field area "amount")) ctx ~completed)

let reset_global () =
  Atomic.set audit_seq 1_000_000;
  Shadow.reset ();
  register_replay ()

(* ------------------------------------------------------------------ *)
(* Execution *)

let post_instance env ~src ~dst ~amount ~fail =
  Program.instance ~def:post_type
    ~steps:
      [
        (post_debit, fun ctx -> debit_body env ~src ~amount ctx);
        (post_credit, fun ctx -> credit_body env ~dst ~amount ~fail ctx);
      ]
    ~footprints:(fun j ->
      if j = 1 then [ (Mode.IX, tab "ledger"); (Mode.X, tup "ledger" [ Int src ]) ]
      else if j = 2 then [ (Mode.IX, tab "ledger"); (Mode.X, tup "ledger" [ Int dst ]) ]
      else [])
    ~compensate:(fun ctx ~completed -> post_compensate_full ~src ~dst ~amount ctx ~completed)
    ~comp_area:(fun () -> [ ("src", Int src); ("dst", Int dst); ("amount", Float amount) ])
    ()

let run_acc ?options ?stop eng env input =
  match input with
  | Post { src; dst; amount; fail } ->
      let outcome = Runtime.run ?options ?stop eng (post_instance env ~src ~dst ~amount ~fail) in
      outcome
  | Audit { id; region } ->
      (* the long reader: full isolation via the legacy protocol — its
         isolation assertional lock queues on in-flight writers *)
      Runtime.run_legacy ?options ?stop eng ~txn_type:"lr_audit" (fun ctx ->
          audit_body env ~id ~region ctx)

let flat env input ctx =
  match input with
  | Post { src; dst; amount; fail } ->
      debit_body env ~src ~amount ctx;
      env.pace ();
      credit_body env ~dst ~amount ~fail ctx
  | Audit { id; region } -> audit_body env ~id ~region ctx

let run_flat ?stop eng env input =
  let r = W.Run.flat ?stop ~txn_type:(txn_name input) eng (fun ctx -> flat env input ctx) in
  r

(* ------------------------------------------------------------------ *)
(* Invariants *)

let eps = 1e-6

let consistency db =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let ledger = Database.table db "ledger" in
  let audit = Database.table db "reader_audit" in
  let n_rows = Acc_relation.Table.cardinality ledger in
  let region_sum = Array.make (regions + 1) 0. in
  let total = ref 0. in
  Acc_relation.Table.iter
    (fun _ row ->
      let reg = as_int row.(1) and amt = fnum row.(2) in
      region_sum.(reg) <- region_sum.(reg) +. amt;
      total := !total +. amt)
    ledger;
  (* global and per-region conservation: every post moves money within one
     region, so both sums are invariant *)
  let expect_total = init_amount *. float_of_int n_rows in
  if Float.abs (!total -. expect_total) > eps then
    add "longreader: ledger total %.2f != %.2f" !total expect_total;
  for reg = 1 to regions do
    let expect = init_amount *. float_of_int (region_rows ~rows:n_rows reg) in
    if Float.abs (region_sum.(reg) -. expect) > eps then
      add "longreader: region %d sum %.2f != %.2f" reg region_sum.(reg) expect
  done;
  (* the isolation proof: every committed audit saw exactly the invariant
     sum — a torn read (mid-post snapshot) would be off by the in-flight
     amount *)
  Acc_relation.Table.iter
    (fun _ row ->
      let id = as_int row.(0) and reg = as_int row.(1) in
      let seen = fnum row.(2) and seen_rows = as_int row.(3) in
      let expect =
        if reg = 0 then expect_total
        else init_amount *. float_of_int (region_rows ~rows:n_rows reg)
      in
      let expect_rows = if reg = 0 then n_rows else region_rows ~rows:n_rows reg in
      if seen_rows <> expect_rows then
        add "longreader: audit %d scanned %d rows, expected %d" id seen_rows expect_rows;
      if Float.abs (seen -. expect) > eps then
        add "longreader: audit %d observed torn sum %.2f (region %d expects %.2f)" id seen reg
          expect)
    audit;
  List.rev !violations

(* ------------------------------------------------------------------ *)

let make (spec : W.spec) : W.t =
  let rows = rows_of_scale spec.W.scale in
  let abort_rate = Option.value ~default:0.02 spec.W.abort_rate in
  let skew = spec.W.skew in
  let mix = spec.W.mix in
  (module struct
    let name = "longreader"
    let describe = "long audit scans vs two-step posts; shadow predicate-lock comparator"
    let conflict_shape = "region-predicate readers against point-write transfer pairs"

    type nonrec input = input
    type nonrec env = env

    let populate ~seed = populate ~rows ~seed
    let make_env ?pace ~seed () = make_env ?pace ~rows ~skew ~abort_rate ~mix ~seed ()
    let split_env = split_env
    let reset_global = reset_global
    let gen_input = gen_input
    let txn_name = txn_name
    let forced_abort = forced_abort
    let workload = workload
    let interference = interference
    let semantics = semantics
    let run_flat = run_flat
    let run_acc = run_acc
    let consistency = consistency
    let extras = Shadow.stats
  end : W.S)
