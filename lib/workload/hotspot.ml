(* Hotspot: the paper's own skew axis as a standalone workload.  A single
   counter table is hammered by multi-row increment transactions whose
   rows are drawn from a Zipfian distribution ([--skew] = theta, 0 =
   uniform).  Each increment is one repeating step, so ACC releases the
   hot row's X lock at the step boundary while strict 2PL holds every row
   to commit — the false-conflict gap widens directly with the skew knob,
   which is exactly the Fig 2-4 quantity the conflict accounting reports.

   The interstep assertion references only the transaction's own (fresh)
   journal rows, so foreign increments never block an in-flight
   transaction's next step (the §3.1 weakest-assertion principle). *)

module W = Workload_intf
module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Database = Acc_relation.Database
module Program = Acc_core.Program
module Assertion = Acc_core.Assertion
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
module Prng = Acc_util.Prng
open Value

let as_int = Value.as_int

(* ------------------------------------------------------------------ *)
(* Schema and population *)

let rows_of_scale scale = 200 * max 1 scale

let schemas =
  let c = Schema.col in
  [
    Schema.make ~name:"hot" ~key:[ "h_id" ] [ c "h_id" Tint; c "h_val" Tint ];
    (* one journal row per applied increment, keyed (txn surrogate, k) *)
    Schema.make ~name:"hot_audit" ~key:[ "au_txn"; "au_k" ]
      [ c "au_txn" Tint; c "au_k" Tint; c "au_row" Tint ];
  ]

let populate ~rows ~seed =
  ignore seed;
  let db = Database.create () in
  List.iter (fun s -> ignore (Database.create_table db s)) schemas;
  let hot_t = Database.table db "hot" in
  for r = 1 to rows do
    Acc_relation.Table.insert hot_t [| Int r; Int 0 |]
  done;
  db

(* ------------------------------------------------------------------ *)
(* Inputs *)

type input =
  | Bump of { txn : int; rows : int list; fail : bool }
      (* increment each row, one repeating step per row; [txn] is the
         journal surrogate, claimed at generation time *)
  | Sum of { threshold : int }  (* READ COMMITTED whole-table sum *)

let txn_name = function Bump _ -> "hs_bump" | Sum _ -> "hs_sum"
let forced_abort = function Bump { fail; _ } -> fail | Sum _ -> false

let txn_seq = Atomic.make 1_000_000
let next_txn () = 1 + Atomic.fetch_and_add txn_seq 1

type env = {
  gen : Prng.t;
  n_rows : int;
  zipf : Prng.zipf option;
  abort_rate : float;
  pace : unit -> unit;
}

let make_env ?(pace = fun () -> ()) ~rows ~skew ~abort_rate ~mix ~seed () =
  (match mix with
  | None | Some "standard" -> ()
  | Some m -> failwith (Printf.sprintf "hotspot: unknown mix %S" m));
  {
    gen = Prng.create ~seed;
    n_rows = rows;
    zipf = (if skew > 0. then Some (Prng.zipf ~n:rows ~theta:skew) else None);
    abort_rate;
    pace;
  }

let split_env env = { env with gen = Prng.split env.gen }

let pick_row env =
  match env.zipf with
  | Some z -> 1 + Prng.zipf_draw env.gen z
  | None -> 1 + Prng.int env.gen env.n_rows

let gen_input env =
  let g = env.gen in
  if Prng.int g 100 < 10 then Sum { threshold = Prng.int g 50 }
  else begin
    let k = 2 + Prng.int g 3 in
    (* distinct rows: redraw on collision (k << n_rows) *)
    let rec draw acc n =
      if n = 0 then acc
      else
        let r = pick_row env in
        if List.mem r acc then draw acc n else draw (r :: acc) (n - 1)
    in
    Bump { txn = next_txn (); rows = draw [] k; fail = Prng.chance g env.abort_rate }
  end

(* ------------------------------------------------------------------ *)
(* Static decomposition *)

let fp = Footprint.make
let cols cs = Footprint.Columns cs
let fresh = Footprint.Fresh
let tab t = Rid.Table t
let tup t k = Rid.Tuple (t, k)

let hb_inc =
  Program.step ~id:1 ~name:"increment" ~txn_type:"hs_bump" ~index:1 ~repeats:true
    ~reads:[ fp "hot" (cols [ "h_val" ]) ]
    ~writes:[ fp "hot" (cols [ "h_val" ]); fp ~fresh "hot_audit" Footprint.All_columns ]
    ()

let hb_comp =
  Program.step ~id:2 ~name:"decrement" ~txn_type:"hs_bump" ~index:0 ~reads:[]
    ~writes:[ fp "hot" (cols [ "h_val" ]); fp ~fresh "hot_audit" Footprint.All_columns ]
    ()

(* the loop invariant: my journal rows agree with my progress — fresh rows
   only, so no foreign step ever blocks on it *)
let a_hb_mine =
  Assertion.make ~id:1 ~name:"hb_journal_mine" ~txn_type:"hs_bump" ~pre_of:2
    ~until:Assertion.until_commit
    ~refs:[ fp ~fresh "hot_audit" Footprint.All_columns ]

let bump_type =
  Program.txn_type ~name:"hs_bump" ~steps:[ hb_inc ] ~comp:hb_comp ~assertions:[ a_hb_mine ] ()

let hs_read =
  Program.step ~id:3 ~name:"sum" ~txn_type:"hs_sum" ~index:1
    ~reads:[ fp "hot" (cols [ "h_val" ]) ]
    ~writes:[] ()

let sum_type = Program.txn_type ~name:"hs_sum" ~steps:[ hs_read ] ~assertions:[] ()

let workload = Program.workload [ bump_type; sum_type ]
let interference = Interference.build workload
let semantics = Interference.semantics interference

(* ------------------------------------------------------------------ *)
(* Bodies *)

let inc_body env ~txn ~k ~row ~fail ~last ctx =
  if last && fail then raise Txn_effect.Abort_requested;
  ignore
    (Executor.update ctx "hot" [ Int row ] (fun r ->
         r.(1) <- Int (as_int r.(1) + 1);
         r));
  env.pace ();
  Executor.insert ctx "hot_audit" [| Int txn; Int k; Int row |]

let sum_body env ~threshold ctx =
  let rows = Executor.scan_committed ctx "hot" () in
  env.pace ();
  let total = List.fold_left (fun acc r -> acc + as_int r.(1)) 0 rows in
  ignore (total > threshold)

let compensate ~txn ~rows ctx ~completed =
  (* undo increments k = completed .. 1; journal keys are derivable from
     the surrogate, so the durable area alone suffices on replay *)
  let rows = Array.of_list rows in
  for k = min completed (Array.length rows) downto 1 do
    let row = rows.(k - 1) in
    ignore
      (Executor.update ctx "hot" [ Int row ] (fun r ->
           r.(1) <- Int (as_int r.(1) - 1);
           r));
    Executor.delete ctx "hot_audit" [ Int txn; Int k ]
  done

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> failwith (Printf.sprintf "hotspot replay: missing area field %s" name)

let register_replay () =
  Replay.register ~txn_type:"hs_bump" ~step_type:hb_comp.Program.sd_id
    (fun ctx ~completed ~area ->
      let n = as_int (field area "n") in
      let rows = List.init n (fun i -> as_int (field area (Printf.sprintf "r%d" i))) in
      compensate ~txn:(as_int (field area "txn")) ~rows ctx ~completed)

let reset_global () =
  Atomic.set txn_seq 1_000_000;
  register_replay ()

(* ------------------------------------------------------------------ *)
(* Instances *)

let bump_instance env ~txn ~rows ~fail =
  let n = List.length rows in
  let steps =
    List.mapi
      (fun idx row ->
        (hb_inc, fun ctx -> inc_body env ~txn ~k:(idx + 1) ~row ~fail ~last:(idx = n - 1) ctx))
      rows
  in
  let rows_arr = Array.of_list rows in
  Program.instance ~def:bump_type ~steps
    ~assertions:[ { Program.ai_assertion = a_hb_mine; ai_from = 2; ai_until = n; ai_check = None } ]
    ~footprints:(fun j ->
      if j >= 1 && j <= n then
        [
          (Mode.IX, tab "hot"); (Mode.X, tup "hot" [ Int rows_arr.(j - 1) ]);
          (Mode.IX, tab "hot_audit"); (Mode.X, tup "hot_audit" [ Int txn; Int j ]);
        ]
      else [])
    ~compensate:(fun ctx ~completed -> compensate ~txn ~rows ctx ~completed)
    ~comp_area:(fun () ->
      ("txn", Int txn) :: ("n", Int n)
      :: List.mapi (fun i row -> (Printf.sprintf "r%d" i, Int row)) rows)
    ()

let run_acc ?options ?stop eng env input =
  match input with
  | Bump { txn; rows; fail } -> Runtime.run ?options ?stop eng (bump_instance env ~txn ~rows ~fail)
  | Sum { threshold } ->
      W.Run.read_committed ?stop ~txn_type:"hs_sum" ~step_type:hs_read.Program.sd_id eng
        (fun ctx -> sum_body env ~threshold ctx)

let flat env input ctx =
  match input with
  | Bump { txn; rows; fail } ->
      let n = List.length rows in
      List.iteri
        (fun idx row ->
          inc_body env ~txn ~k:(idx + 1) ~row ~fail ~last:(idx = n - 1) ctx;
          if idx < n - 1 then env.pace ())
        rows
  | Sum { threshold } -> sum_body env ~threshold ctx

let run_flat ?stop eng env input =
  W.Run.flat ?stop ~txn_type:(txn_name input) eng (fun ctx -> flat env input ctx)

(* ------------------------------------------------------------------ *)
(* Invariants *)

let consistency db =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let hot_t = Database.table db "hot" in
  let audit = Database.table db "hot_audit" in
  let per_row = Hashtbl.create 64 in
  Acc_relation.Table.iter
    (fun _ row ->
      let r = as_int row.(2) in
      Hashtbl.replace per_row r (1 + Option.value ~default:0 (Hashtbl.find_opt per_row r)))
    audit;
  let total = ref 0 and journaled = ref 0 in
  Acc_relation.Table.iter
    (fun _ row ->
      let r = as_int row.(0) and v = as_int row.(1) in
      total := !total + v;
      let j = Option.value ~default:0 (Hashtbl.find_opt per_row r) in
      journaled := !journaled + j;
      (* every committed increment left exactly one journal row *)
      if v <> j then add "hotspot: row %d counted %d but journaled %d" r v j;
      if v < 0 then add "hotspot: row %d negative (%d)" r v)
    hot_t;
  if !total <> !journaled then
    add "hotspot: table total %d != journal rows %d" !total !journaled;
  List.rev !violations

(* ------------------------------------------------------------------ *)

let make (spec : W.spec) : W.t =
  let rows = rows_of_scale spec.W.scale in
  let abort_rate = Option.value ~default:0.02 spec.W.abort_rate in
  (* the knob: default to a strong hotspot when the caller leaves skew 0,
     since a uniform "hotspot" workload defeats its purpose *)
  let skew = if spec.W.skew > 0. then spec.W.skew else 0.9 in
  let mix = spec.W.mix in
  (module struct
    let name = "hotspot"
    let describe = "Zipfian multi-row increments; step-boundary release vs 2PL hold-to-commit"
    let conflict_shape = "k-row read-modify-write on Zipf-hot counters"

    type nonrec input = input
    type nonrec env = env

    let populate ~seed = populate ~rows ~seed
    let make_env ?pace ~seed () = make_env ?pace ~rows ~skew ~abort_rate ~mix ~seed ()
    let split_env = split_env
    let reset_global = reset_global
    let gen_input = gen_input
    let txn_name = txn_name
    let forced_abort = forced_abort
    let workload = workload
    let interference = interference
    let semantics = semantics
    let run_flat = run_flat
    let run_acc = run_acc
    let consistency = consistency
    let extras () = []
  end : W.S)
