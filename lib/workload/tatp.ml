(* TATP-style telecom mix (Neuvonen et al.): read-mostly — 80% point
   reads of subscriber/access rows, 20% updates.  The decomposed
   transaction is [tatp_update_location]: step 1 bumps the subscriber's
   update counter and claims a sequence number; step 2 writes the new
   location and journals the claimed number.  The interstep assertion
   mirrors TPC-C's order-counter claim: "the sequence number I drew is
   mine alone and below the counter" — foreign bumps are monotone and
   declared compatible, so concurrent location updates to the same
   subscriber pipeline instead of serializing on the counter, while the
   journal keyed (subscriber, seq) stays collision-free. *)

module W = Workload_intf
module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Database = Acc_relation.Database
module Program = Acc_core.Program
module Assertion = Acc_core.Assertion
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module Replay = Acc_core.Replay
module Executor = Acc_txn.Executor
module Txn_effect = Acc_txn.Txn_effect
module Mode = Acc_lock.Mode
module Rid = Acc_lock.Resource_id
module Prng = Acc_util.Prng
open Value

let as_int = Value.as_int

(* ------------------------------------------------------------------ *)
(* Schema and population *)

let subscribers_of_scale scale = 100 * max 1 scale

let schemas =
  let c = Schema.col in
  [
    Schema.make ~name:"subscriber" ~key:[ "s_id" ]
      [
        c "s_id" Tint; c "sub_nbr" Tstr; c "bit_1" Tint; c "vlr_location" Tint;
        c "upd_cnt" Tint;
      ];
    Schema.make ~name:"access_info" ~key:[ "ai_s_id"; "ai_type" ]
      [ c "ai_s_id" Tint; c "ai_type" Tint; c "ai_data" Tint ];
    (* location-update journal, keyed by the claimed (subscriber, seq):
       deterministic fresh keys, no surrogate sequence needed *)
    Schema.make ~name:"tatp_audit" ~key:[ "au_s_id"; "au_seq" ]
      [ c "au_s_id" Tint; c "au_seq" Tint; c "au_loc" Tint ];
  ]

let populate ~subscribers ~seed =
  let g = Prng.create ~seed in
  let db = Database.create () in
  List.iter (fun s -> ignore (Database.create_table db s)) schemas;
  let sub_t = Database.table db "subscriber" in
  let ai_t = Database.table db "access_info" in
  for s = 1 to subscribers do
    Acc_relation.Table.insert sub_t
      [|
        Int s; Str (Prng.numeric_string g 15); Int (Prng.int g 2); Int (Prng.int g 10_000);
        Int 0;
      |];
    for ty = 1 to 4 do
      Acc_relation.Table.insert ai_t [| Int s; Int ty; Int (Prng.int g 256) |]
    done
  done;
  db

(* ------------------------------------------------------------------ *)
(* Inputs *)

type input =
  | Get_subscriber of { sub : int }
  | Get_access of { sub : int; ty : int }
  | Update_bit of { sub : int; bit : int }
  | Update_location of { sub : int; loc : int; fail : bool }

let txn_name = function
  | Get_subscriber _ -> "tatp_get_subscriber"
  | Get_access _ -> "tatp_get_access"
  | Update_bit _ -> "tatp_update_bit"
  | Update_location _ -> "tatp_update_location"

let forced_abort = function Update_location { fail; _ } -> fail | _ -> false

type env = {
  gen : Prng.t;
  n_subs : int;
  zipf : Prng.zipf option;
  abort_rate : float;
  update_heavy : bool;  (* "update-heavy" mix: 50% location updates *)
  pace : unit -> unit;
}

let make_env ?(pace = fun () -> ()) ~subscribers ~skew ~abort_rate ~mix ~seed () =
  let update_heavy =
    match mix with
    | Some "update-heavy" -> true
    | Some "standard" | None -> false
    | Some m -> failwith (Printf.sprintf "tatp: unknown mix %S" m)
  in
  {
    gen = Prng.create ~seed;
    n_subs = subscribers;
    zipf = (if skew > 0. then Some (Prng.zipf ~n:subscribers ~theta:skew) else None);
    abort_rate;
    update_heavy;
    pace;
  }

let split_env env = { env with gen = Prng.split env.gen }

let pick_sub env =
  match env.zipf with
  | Some z -> 1 + Prng.zipf_draw env.gen z
  | None -> 1 + Prng.int env.gen env.n_subs

let gen_input env =
  let g = env.gen in
  let sub = pick_sub env in
  let roll = Prng.int g 100 in
  let upd_loc () =
    Update_location { sub; loc = Prng.int g 10_000; fail = Prng.chance g env.abort_rate }
  in
  if env.update_heavy then
    if roll < 30 then Get_subscriber { sub }
    else if roll < 45 then Get_access { sub; ty = 1 + Prng.int g 4 }
    else if roll < 50 then Update_bit { sub; bit = Prng.int g 2 }
    else upd_loc ()
  else if roll < 35 then Get_subscriber { sub }
  else if roll < 75 then Get_access { sub; ty = 1 + Prng.int g 4 }
  else if roll < 80 then Update_bit { sub; bit = Prng.int g 2 }
  else upd_loc ()

(* ------------------------------------------------------------------ *)
(* Static decomposition *)

let fp = Footprint.make
let cols cs = Footprint.Columns cs
let fresh = Footprint.Fresh
let tab t = Rid.Table t
let tup t k = Rid.Tuple (t, k)

let gs_read =
  Program.step ~id:1 ~name:"read-profile" ~txn_type:"tatp_get_subscriber" ~index:1
    ~reads:[ fp "subscriber" Footprint.All_columns ]
    ~writes:[] ()

let get_subscriber_type =
  Program.txn_type ~name:"tatp_get_subscriber" ~steps:[ gs_read ] ~assertions:[] ()

let ga_read =
  Program.step ~id:2 ~name:"read-access" ~txn_type:"tatp_get_access" ~index:1
    ~reads:[ fp "access_info" (cols [ "ai_data" ]) ]
    ~writes:[] ()

let get_access_type =
  Program.txn_type ~name:"tatp_get_access" ~steps:[ ga_read ] ~assertions:[] ()

let ub_write =
  Program.step ~id:3 ~name:"flip-bit" ~txn_type:"tatp_update_bit" ~index:1
    ~reads:[ fp "subscriber" (cols [ "bit_1" ]) ]
    ~writes:[ fp "subscriber" (cols [ "bit_1" ]) ]
    ()

let ub_comp =
  Program.step ~id:4 ~name:"unflip-bit" ~txn_type:"tatp_update_bit" ~index:0 ~reads:[]
    ~writes:[ fp "subscriber" (cols [ "bit_1" ]) ]
    ()

let update_bit_type =
  Program.txn_type ~name:"tatp_update_bit" ~steps:[ ub_write ] ~comp:ub_comp ~assertions:[] ()

let ul_bump =
  Program.step ~id:5 ~name:"claim-seq" ~txn_type:"tatp_update_location" ~index:1
    ~reads:[ fp "subscriber" (cols [ "upd_cnt" ]) ]
    ~writes:[ fp "subscriber" (cols [ "upd_cnt" ]) ]
    ()

let ul_write =
  Program.step ~id:6 ~name:"write-location" ~txn_type:"tatp_update_location" ~index:2
    ~reads:[]
    ~writes:
      [
        fp "subscriber" (cols [ "vlr_location" ]);
        fp ~fresh "tatp_audit" Footprint.All_columns;
      ]
    ()

let ul_comp =
  Program.step ~id:7 ~name:"void-update" ~txn_type:"tatp_update_location" ~index:0 ~reads:[]
    ~writes:[ fp ~fresh "tatp_audit" Footprint.All_columns ]
    ()

(* pre(S_2): "the sequence number I claimed is mine alone and below the
   counter" — references the shared counter, but foreign bumps only grow
   it: declared compatible below (TPC-C's a_no_seq shape). *)
let a_ul_seq =
  Assertion.make ~id:1 ~name:"ul_seq_claimed" ~txn_type:"tatp_update_location" ~pre_of:2
    ~until:2
    ~refs:
      [ fp "subscriber" (cols [ "upd_cnt" ]); fp ~fresh "tatp_audit" Footprint.All_columns ]

let update_location_type =
  Program.txn_type ~name:"tatp_update_location" ~steps:[ ul_bump; ul_write ] ~comp:ul_comp
    ~assertions:[ a_ul_seq ] ()

let workload =
  Program.workload
    [ get_subscriber_type; get_access_type; update_bit_type; update_location_type ]

let interference =
  Interference.build ~compatible:[ (ul_bump.Program.sd_id, a_ul_seq.Assertion.id) ] workload

let semantics = Interference.semantics interference

(* ------------------------------------------------------------------ *)
(* Bodies (all randomness drawn at generation time) *)

type ul_ws = { mutable seq : int }

let gs_body env ~sub ctx =
  let row = Executor.read_exn ctx "subscriber" [ Int sub ] in
  env.pace ();
  ignore (as_int row.(3))

let ga_body env ~sub ~ty ctx =
  let row = Executor.read_exn ctx "access_info" [ Int sub; Int ty ] in
  env.pace ();
  ignore (as_int row.(2))

let ub_body env ~sub ~bit ctx =
  ignore env;
  ignore
    (Executor.update ctx "subscriber" [ Int sub ] (fun row ->
         row.(2) <- Int bit;
         row))

let ul_bump_body env ~sub (ws : ul_ws) ctx =
  let row =
    Executor.update ctx "subscriber" [ Int sub ] (fun row ->
        row.(4) <- Int (as_int row.(4) + 1);
        row)
  in
  ws.seq <- as_int row.(4);
  env.pace ()

let ul_write_body env ~sub ~loc ~fail (ws : ul_ws) ctx =
  if fail then raise Txn_effect.Abort_requested;
  ignore
    (Executor.update ctx "subscriber" [ Int sub ] (fun row ->
         row.(3) <- Int loc;
         row));
  env.pace ();
  Executor.insert ctx "tatp_audit" [| Int sub; Int ws.seq; Int loc |]

(* ------------------------------------------------------------------ *)
(* Compensations *)

(* bit flips are last-writer-wins noise; semantic undo is a no-op beyond
   honoring the obligation *)
let ub_compensate _ctx ~completed:_ = ()

(* the claimed sequence number is exposed and stays burnt (TPC-C's order
   id); journal it as a cancelled update so the counter still reconciles *)
let ul_compensate ~sub ~seq ctx ~completed =
  if seq > 0 then begin
    if completed >= 2 then ignore (Executor.delete ctx "tatp_audit" [ Int sub; Int seq ]);
    if completed >= 1 then Executor.insert ctx "tatp_audit" [| Int sub; Int seq; Int (-1) |]
  end

let field area name =
  match List.assoc_opt name area with
  | Some v -> v
  | None -> failwith (Printf.sprintf "tatp replay: missing area field %s" name)

let register_replay () =
  Replay.register ~txn_type:"tatp_update_bit" ~step_type:ub_comp.Program.sd_id
    (fun ctx ~completed ~area:_ -> ub_compensate ctx ~completed);
  Replay.register ~txn_type:"tatp_update_location" ~step_type:ul_comp.Program.sd_id
    (fun ctx ~completed ~area ->
      ul_compensate ~sub:(as_int (field area "sub")) ~seq:(as_int (field area "seq")) ctx
        ~completed)

let reset_global () = register_replay ()

(* ------------------------------------------------------------------ *)
(* Instances *)

let read_footprint ~table ~key _ = [ (Mode.IS, tab table); (Mode.S, tup table key) ]

let instance env input =
  match input with
  | Get_subscriber { sub } ->
      Program.instance ~def:get_subscriber_type
        ~steps:[ (gs_read, fun ctx -> gs_body env ~sub ctx) ]
        ~footprints:(read_footprint ~table:"subscriber" ~key:[ Int sub ])
        ()
  | Get_access { sub; ty } ->
      Program.instance ~def:get_access_type
        ~steps:[ (ga_read, fun ctx -> ga_body env ~sub ~ty ctx) ]
        ~footprints:(read_footprint ~table:"access_info" ~key:[ Int sub; Int ty ])
        ()
  | Update_bit { sub; bit } ->
      Program.instance ~def:update_bit_type
        ~steps:[ (ub_write, fun ctx -> ub_body env ~sub ~bit ctx) ]
        ~footprints:(fun _ ->
          [ (Mode.IX, tab "subscriber"); (Mode.X, tup "subscriber" [ Int sub ]) ])
        ~compensate:(fun ctx ~completed -> ub_compensate ctx ~completed)
        ~comp_area:(fun () -> [ ("sub", Int sub) ])
        ()
  | Update_location { sub; loc; fail } ->
      let ws = { seq = 0 } in
      Program.instance ~def:update_location_type
        ~steps:
          [
            (ul_bump, fun ctx -> ul_bump_body env ~sub ws ctx);
            (ul_write, fun ctx -> ul_write_body env ~sub ~loc ~fail ws ctx);
          ]
        ~assertions:
          [ { Program.ai_assertion = a_ul_seq; ai_from = 2; ai_until = 2; ai_check = None } ]
        ~footprints:(fun j ->
          if j = 1 then
            [ (Mode.IX, tab "subscriber"); (Mode.X, tup "subscriber" [ Int sub ]) ]
          else if j = 2 then
            [
              (Mode.IX, tab "subscriber"); (Mode.X, tup "subscriber" [ Int sub ]);
              (Mode.IX, tab "tatp_audit");
              (Mode.X, tup "tatp_audit" [ Int sub; Int ws.seq ]);
            ]
          else [])
        ~compensate:(fun ctx ~completed -> ul_compensate ~sub ~seq:ws.seq ctx ~completed)
        ~comp_area:(fun () -> [ ("sub", Int sub); ("seq", Int ws.seq) ])
        ()

let run_acc ?options ?stop eng env input = Runtime.run ?options ?stop eng (instance env input)

let flat env input ctx =
  match input with
  | Get_subscriber { sub } -> gs_body env ~sub ctx
  | Get_access { sub; ty } -> ga_body env ~sub ~ty ctx
  | Update_bit { sub; bit } -> ub_body env ~sub ~bit ctx
  | Update_location { sub; loc; fail } ->
      let ws = { seq = 0 } in
      ul_bump_body env ~sub ws ctx;
      env.pace ();
      ul_write_body env ~sub ~loc ~fail ws ctx

let run_flat ?stop eng env input =
  W.Run.flat ?stop ~txn_type:(txn_name input) eng (fun ctx -> flat env input ctx)

(* ------------------------------------------------------------------ *)
(* Invariants *)

let consistency db =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let sub_t = Database.table db "subscriber" in
  let audit = Database.table db "tatp_audit" in
  (* journal rows per subscriber; (s, seq) uniqueness is enforced by the
     table's primary key — a duplicate claim would have failed the insert *)
  let counts = Hashtbl.create 64 in
  Acc_relation.Table.iter
    (fun _ row ->
      let s = as_int row.(0) and seq = as_int row.(1) in
      Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s));
      if seq < 1 then add "tatp: subscriber %d journal row with bad seq %d" s seq)
    audit;
  Acc_relation.Table.iter
    (fun _ row ->
      let s = as_int row.(0) in
      let cnt = as_int row.(4) in
      let journaled = Option.value ~default:0 (Hashtbl.find_opt counts s) in
      (* every claimed sequence number is journaled exactly once, as a
         committed update or a cancellation *)
      if cnt <> journaled then
        add "tatp: subscriber %d claimed %d updates but journaled %d" s cnt journaled)
    sub_t;
  List.rev !violations

(* ------------------------------------------------------------------ *)

let make (spec : W.spec) : W.t =
  let subscribers = subscribers_of_scale spec.W.scale in
  let abort_rate = Option.value ~default:0.02 spec.W.abort_rate in
  let skew = spec.W.skew in
  let mix = spec.W.mix in
  (module struct
    let name = "tatp"
    let describe = "TATP-style read-mostly telecom mix with pipelined location updates"
    let conflict_shape = "80% point reads; counter-claim pipeline on hot subscribers"

    type nonrec input = input
    type nonrec env = env

    let populate ~seed = populate ~subscribers ~seed
    let make_env ?pace ~seed () = make_env ?pace ~subscribers ~skew ~abort_rate ~mix ~seed ()
    let split_env = split_env
    let reset_global = reset_global
    let gen_input = gen_input
    let txn_name = txn_name
    let forced_abort = forced_abort
    let workload = workload
    let interference = interference
    let semantics = semantics
    let run_flat = run_flat
    let run_acc = run_acc
    let consistency = consistency
    let extras () = []
  end : W.S)
