(* Root of the workload plugin library: the interface, the registry, and
   the bundled workloads (DESIGN.md §19).  TPC-C's plugin lives in
   [Acc_tpcc.Tpcc_workload] (it needs the TPC-C library); call
   [Builtin.ensure ()] plus [Acc_tpcc.Tpcc_workload.register ()] — or go
   through [Acc_harness.Cli] — to have every workload registered. *)

include Workload_intf
module Smallbank = Smallbank
module Tatp = Tatp
module Hotspot = Hotspot
module Long_reader = Long_reader
module Order_processing = Order_processing
module Stock_trading = Stock_trading
module Builtin = Builtin
