(* Registers the workloads that ship with the library.  TPC-C lives in
   acc_tpcc (above this library in the dependency order) and registers
   itself via Tpcc_workload.register; callers that want the full menu go
   through Acc_harness.Cli, which forces both linkages. *)

module W = Workload_intf

let registered = ref false

let ensure () =
  if not !registered then begin
    registered := true;
    W.Registry.register ~name:"smallbank"
      ~doc:"SmallBank: five banking txns; write-skew overdraw is the target anomaly"
      Smallbank.make;
    W.Registry.register ~name:"tatp"
      ~doc:"TATP-style read-mostly subscriber mix with a sequenced location update"
      Tatp.make;
    W.Registry.register ~name:"hotspot"
      ~doc:"Zipfian increments on a small hot set; --skew sets theta (default 0.9)"
      Hotspot.make;
    W.Registry.register ~name:"longreader"
      ~doc:"region-sum ledger audited by long predicate-range readers"
      Long_reader.make;
    W.Registry.register ~name:"order-processing"
      ~doc:"the paper's Sec 4 order scenario: counter gate + admission-locked bills"
      Order_processing.make;
    W.Registry.register ~name:"stock-trading"
      ~doc:"multi-lot buys with no interstep assertions (non-CSR by design)"
      Stock_trading.make
  end
