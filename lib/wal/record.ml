module Value = Acc_relation.Value

type write = {
  w_table : string;
  w_key : Value.t list;
  w_before : Value.t array option;
  w_after : Value.t array option;
}

type t =
  | Begin of { txn : int; txn_type : string; multi_step : bool }
  | Write of { txn : int; write : write; undo : bool }
  | Step_end of { txn : int; step_index : int }
  | Comp_area of { txn : int; completed_steps : int; area : (string * Value.t) list }
  | Prepare of { txn : int; gid : int }
  | Commit of { txn : int }
  | Abort of { txn : int }

let txn_of = function
  | Begin { txn; _ }
  | Write { txn; _ }
  | Step_end { txn; _ }
  | Comp_area { txn; _ }
  | Prepare { txn; _ }
  | Commit { txn }
  | Abort { txn } ->
      txn

let kind = function
  | Begin _ -> "begin"
  | Write { undo = false; _ } -> "write"
  | Write { undo = true; _ } -> "undo"
  | Step_end _ -> "step_end"
  | Comp_area _ -> "comp_area"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Abort _ -> "abort"

let pp_key ppf key =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Value.pp ppf key

let pp ppf = function
  | Begin { txn; txn_type; multi_step } ->
      Format.fprintf ppf "BEGIN T%d %s%s" txn txn_type (if multi_step then " (multi-step)" else "")
  | Write { txn; write; undo } ->
      let kind =
        match (write.w_before, write.w_after) with
        | None, Some _ -> "insert"
        | Some _, None -> "delete"
        | Some _, Some _ -> "update"
        | None, None -> "noop"
      in
      Format.fprintf ppf "%s T%d %s %s[%a]"
        (if undo then "UNDO" else "WRITE")
        txn kind write.w_table pp_key write.w_key
  | Step_end { txn; step_index } -> Format.fprintf ppf "STEP_END T%d step %d" txn step_index
  | Comp_area { txn; completed_steps; area } ->
      Format.fprintf ppf "COMP_AREA T%d after %d steps (%d values)" txn completed_steps
        (List.length area)
  | Prepare { txn; gid } -> Format.fprintf ppf "PREPARE T%d (global %d)" txn gid
  | Commit { txn } -> Format.fprintf ppf "COMMIT T%d" txn
  | Abort { txn } -> Format.fprintf ppf "ABORT T%d" txn

let invert w = { w with w_before = w.w_after; w_after = w.w_before }
