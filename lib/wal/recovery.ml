module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Value = Acc_relation.Value

type pending = {
  p_txn : int;
  p_txn_type : string;
  p_completed_steps : int;
  p_area : (string * Value.t) list;
}

type in_doubt = {
  i_txn : int;
  i_txn_type : string;
  i_completed_steps : int;
  i_area : (string * Value.t) list;
  i_gid : int;
}

type report = {
  db : Database.t;
  pending : pending list;
  in_doubt : in_doubt list;
  committed : int list;
  physically_undone : int list;
  already_resolved : int list;
}

let apply_write db (w : Record.write) =
  let table = Database.table db w.Record.w_table in
  match (w.Record.w_before, w.Record.w_after) with
  | None, Some row -> Table.insert table row
  | Some _, None -> ignore (Table.delete table w.Record.w_key)
  | Some _, Some row -> ignore (Table.update table w.Record.w_key (fun _ -> row))
  | None, None -> ()

let undo_write db w = apply_write db (Record.invert w)

(* Per-transaction crash-time picture assembled during analysis. *)
type txn_info = {
  mutable txn_type : string;
  mutable multi_step : bool;
  mutable status : [ `Active | `Committed | `Resolved ];
  mutable completed_steps : int;
  mutable area : (string * Value.t) list;
  (* a work area becomes authoritative only when its step-end record is also
     durable; until then it describes a step that never completed *)
  mutable staged_area : (string * Value.t) list option;
  (* forward writes since the last step boundary, newest first *)
  mutable tail_writes : Record.write list;
  (* compensation-log records seen since the last step boundary: each one
     already undid the newest not-yet-covered forward write *)
  mutable tail_undone : int;
  (* undo-records beyond those covering the forward tail: the writes of a
     logical compensating step in progress, newest first.  If the crash
     interrupts the compensation, these are physically rewound so the
     replayed compensating step restarts from a clean post-last-step state *)
  mutable comp_writes : Record.write list;
  (* the compensating step's own end-of-step record is durable: the
     compensation is complete even though the final Abort record is not —
     the step-end is its atomic commit point, same as any step *)
  mutable comp_done : bool;
  (* a durable Prepare vote: the transaction is a 2PC participant in doubt
     until its coordinator's decision is known *)
  mutable prepared_gid : int option;
}

let recover ~baseline records =
  let db = Database.copy baseline in
  let txns : (int, txn_info) Hashtbl.t = Hashtbl.create 32 in
  let info txn =
    match Hashtbl.find_opt txns txn with
    | Some i -> i
    | None ->
        let i =
          {
            txn_type = "?";
            multi_step = false;
            status = `Active;
            completed_steps = 0;
            area = [];
            staged_area = None;
            tail_writes = [];
            tail_undone = 0;
            comp_writes = [];
            comp_done = false;
            prepared_gid = None;
          }
        in
        Hashtbl.add txns txn i;
        i
  in
  (* single pass: redo while building the analysis *)
  List.iter
    (fun record ->
      match record with
      | Record.Begin { txn; txn_type; multi_step } ->
          let i = info txn in
          i.txn_type <- txn_type;
          i.multi_step <- multi_step
      | Record.Write { txn; write; undo } ->
          apply_write db write;
          let i = info txn in
          if undo then
            (* the first [length tail_writes] undo-records reverse the
               forward tail (physical step rollback, newest first); any
               further ones are the writes of a logical compensating step *)
            if i.tail_undone < List.length i.tail_writes then
              i.tail_undone <- i.tail_undone + 1
            else i.comp_writes <- write :: i.comp_writes
          else i.tail_writes <- write :: i.tail_writes
      | Record.Step_end { txn; step_index } ->
          let i = info txn in
          if i.comp_writes <> [] then
            (* end-of-step of the compensating step itself: its durable
               step-end commits the compensation even if the Abort record
               never made the log *)
            i.comp_done <- true
          else begin
            i.completed_steps <- max i.completed_steps step_index;
            (match i.staged_area with
            | Some area ->
                i.area <- area;
                i.staged_area <- None
            | None -> ());
            i.tail_writes <- [];
            i.tail_undone <- 0
          end
      | Record.Comp_area { txn; completed_steps = _; area } ->
          (* staged until the matching Step_end arrives: only a durable
             end-of-step record completes a step *)
          (info txn).staged_area <- Some area
      | Record.Prepare { txn; gid } -> (info txn).prepared_gid <- Some gid
      | Record.Commit { txn } -> (info txn).status <- `Committed
      | Record.Abort { txn } -> (info txn).status <- `Resolved)
    records;
  (* a loser whose compensating step completed (its step-end record is
     durable) needs nothing further: only the Abort marker was lost *)
  Hashtbl.iter (fun _ i -> if i.status = `Active && i.comp_done then i.status <- `Resolved) txns;
  (* physical undo of every loser's uncompleted work, newest first: the
     writes of an interrupted compensating step, then the forward tail of
     the uncompleted step (of which the newest [tail_undone] were already
     reversed by logged rollback records) *)
  let losers =
    Hashtbl.fold (fun txn i acc -> if i.status = `Active then (txn, i) :: acc else acc) txns []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (_, i) ->
      let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
      List.iter (undo_write db) (i.comp_writes @ drop i.tail_undone i.tail_writes))
    losers;
  (* a prepared loser voted yes in a two-phase commit and must await its
     coordinator's decision: it is reported in doubt, neither compensated
     (the decision may be commit) nor treated as undone (its steps stand).
     The physical rewind above only cleared an interrupted compensating
     step, which the eventual abort resolution restarts from scratch. *)
  let in_doubt, undecided =
    List.partition (fun (_, i) -> i.prepared_gid <> None) losers
  in
  let pending, physically_undone =
    List.partition (fun (_, i) -> i.multi_step && i.completed_steps > 0) undecided
  in
  {
    db;
    in_doubt =
      List.map
        (fun (txn, i) ->
          {
            i_txn = txn;
            i_txn_type = i.txn_type;
            i_completed_steps = i.completed_steps;
            i_area = i.area;
            i_gid = (match i.prepared_gid with Some g -> g | None -> assert false);
          })
        in_doubt;
    pending =
      List.map
        (fun (txn, i) ->
          {
            p_txn = txn;
            p_txn_type = i.txn_type;
            p_completed_steps = i.completed_steps;
            p_area = i.area;
          })
        pending;
    committed =
      Hashtbl.fold (fun txn i acc -> if i.status = `Committed then txn :: acc else acc) txns []
      |> List.sort compare;
    physically_undone = List.map fst physically_undone;
    already_resolved =
      Hashtbl.fold (fun txn i acc -> if i.status = `Resolved then txn :: acc else acc) txns []
      |> List.sort compare;
  }
