(** Quiescent checkpoints: bound the log prefix recovery must replay.

    A checkpoint is a deep copy of the database plus the log position it
    reflects.  It must be taken at a {e transaction-quiescent} point (no
    transaction between its [Begin] and its final [Commit]/[Abort]) — the
    engine-level wrapper {!Acc_txn.Executor.checkpoint} enforces this.
    Recovery then starts from the snapshot and replays only the suffix; the
    result is identical to recovering the whole log from the original
    baseline (property-tested).

    Fuzzy (non-quiescent) checkpoints would need ARIES-style dirty-page and
    transaction tables; the paper's system does not describe them and the
    quiescent form is sufficient to exercise the protocol obligations
    (end-of-step records, work areas) with a truncated log. *)

type t

val take : Acc_relation.Database.t -> Log.t -> t
(** Snapshot the database and record the current end of the log.  The caller
    must guarantee quiescence; see {!Acc_txn.Executor.checkpoint}. *)

val position : t -> Log.lsn
(** First LSN that recovery from this checkpoint will replay. *)

val snapshot : t -> Acc_relation.Database.t
(** The stored snapshot (do not mutate; {!recover} copies it). *)

val recover : t -> Log.t -> Recovery.report
(** Recover using the snapshot and the records appended after it. *)
