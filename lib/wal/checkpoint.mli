(** Quiescent checkpoints: bound the log prefix recovery must replay.

    A checkpoint is a deep copy of the database plus the log position it
    reflects.  It must be taken at a {e transaction-quiescent} point (no
    transaction between its [Begin] and its final [Commit]/[Abort]) — the
    engine-level wrapper {!Acc_txn.Executor.checkpoint} enforces this.
    Recovery then starts from the snapshot and replays only the suffix; the
    result is identical to recovering the whole log from the original
    baseline (property-tested).

    Fuzzy (non-quiescent) checkpoints would need ARIES-style dirty-page and
    transaction tables; the paper's system does not describe them and the
    quiescent form is sufficient to exercise the protocol obligations
    (end-of-step records, work areas) with a truncated log. *)

type t

val take : Acc_relation.Database.t -> Log.t -> t
(** Snapshot the database and record the current end of the log.  The caller
    must guarantee quiescence; see {!Acc_txn.Executor.checkpoint}. *)

val position : t -> Log.lsn
(** First LSN that recovery from this checkpoint will replay. *)

val snapshot : t -> Acc_relation.Database.t
(** The stored snapshot (do not mutate; {!recover} copies it). *)

val recover : t -> Log.t -> Recovery.report
(** Recover using the snapshot and the records appended after it. *)

val save : t -> string -> unit
(** Persist the checkpoint (snapshot rows, index specifications, and log
    position) to a file with [Marshal].  Together with {!Log.save} this is a
    complete on-disk recovery image. *)

val load : string -> t
(** Read back a checkpoint written by {!save}, rebuilding every secondary
    and ordered index from its stored specification.  Raises [Failure] on an
    unreadable file. *)

(** Checkpoint cadence: keep the latest checkpoint and take a new one every
    [every] log records, so recovery replays a bounded suffix instead of the
    whole WAL.  The caller still guarantees quiescence at each
    [maybe_take] (drivers call it between transactions, through
    {!Acc_txn.Executor.checkpoint}'s active-transaction guard). *)
module Manager : sig
  type checkpoint = t

  type t

  val create : ?every:int -> unit -> t
  (** A manager that considers a new checkpoint due once [every] (default
      256) records have been appended past the latest one. *)

  val latest : t -> checkpoint option

  val install : t -> checkpoint -> unit
  (** Adopt an externally taken checkpoint (e.g. from
      {!Acc_txn.Executor.checkpoint}) as the latest. *)

  val maybe_take : t -> Acc_relation.Database.t -> Log.t -> bool
  (** Take and install a checkpoint if one is due; returns whether it did.
      The caller must guarantee transaction quiescence. *)

  val recover : t -> baseline:Acc_relation.Database.t -> Log.t -> Recovery.report
  (** Recover from the latest checkpoint's snapshot and the log suffix
      beyond it — or from [baseline] and the whole log if no checkpoint has
      been taken. *)
end
