(** Crash-restart recovery (§3.4 / §5 of the paper).

    Rebuilds the database from a pristine baseline plus a log prefix:

    - {b redo}: every logged write is replayed in order;
    - {b physical undo}: for each transaction that was alive at the crash,
      writes after its last end-of-step record are undone in reverse — a step
      is atomic, so it either completed (its end-of-step record is in the
      log) or leaves no trace;
    - {b logical undo}: a multi-step transaction that had completed one or
      more steps exposed intermediate results, so physical undo is unsound
      (§3.4); recovery reports it as {e pending compensation}, carrying the
      work area saved at its last step boundary.  The ACC runtime re-executes
      the programmer-supplied compensating step from that area.

    Compensation-log records ([Write] with [undo = true]) are replayed like
    ordinary writes.  The ones that reverse the forward tail of an
    uncompleted step are never undone — recovery is correct even when the
    crash interrupts a physical rollback that was itself in progress.  The
    ones a {e logical compensating step} logged are step-atomic like any
    other step's: if the compensating step's end-of-step record is durable,
    the compensation is treated as complete (only the final [Abort] marker
    was lost); otherwise its partial writes are physically rewound and the
    transaction is reported pending, so the replayed compensating step
    restarts from a clean post-last-step state. *)

type pending = {
  p_txn : int;
  p_txn_type : string;
  p_completed_steps : int;
  p_area : (string * Acc_relation.Value.t) list;
}

type in_doubt = {
  i_txn : int;
  i_txn_type : string;
  i_completed_steps : int;
  i_area : (string * Acc_relation.Value.t) list;
  i_gid : int;  (** the global transaction whose coordinator decides *)
}
(** A participant branch whose [Prepare] vote is durable but whose outcome
    is not: recovery must consult the coordinator's decision log — commit
    the branch if a commit decision is found, compensate it otherwise
    (presumed abort). *)

type report = {
  db : Acc_relation.Database.t;  (** the recovered state *)
  pending : pending list;  (** transactions awaiting compensating steps *)
  in_doubt : in_doubt list;
      (** prepared 2PC participants awaiting their coordinator's decision *)
  committed : int list;
  physically_undone : int list;
      (** losers with no completed step: rolled back in place *)
  already_resolved : int list;
      (** transactions whose [Abort] record made the log: nothing to do *)
}

val apply_write : Acc_relation.Database.t -> Record.write -> unit
(** Replay one physical image (insert/delete/update by key). *)

val recover : baseline:Acc_relation.Database.t -> Record.t list -> report
(** [recover ~baseline records] leaves [baseline] untouched and returns the
    recovered copy. *)
