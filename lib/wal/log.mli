(** The append-only log.

    An in-memory stand-in for a durable log file: supports appending,
    sequential reads, and prefix extraction (for crash-injection tests that
    "lose" the unforced tail). *)

type t

type lsn = int
(** Log sequence number: the index of a record; the first record has LSN 0. *)

(** The shared on-disk header discipline: a fixed magic string followed by a
    4-byte big-endian format version.  The WAL file format uses it, and so do
    the coordinator's durable decision log and the dist transport's wire
    framing — one place to keep "unreadable file" errors actionable. *)
module Header : sig
  val size : magic:string -> int
  (** Bytes a header with this magic occupies. *)

  val to_string : magic:string -> version:int -> string
  (** The header bytes. *)

  val check :
    magic:string -> version:int -> what:string -> who:string -> path:string -> string -> unit
  (** [check ~magic ~version ~what ~who ~path s] validates the header bytes
      [s] (possibly shorter than {!size} when the file was truncated) and
      raises [Failure] with a distinct, actionable message per failure class:
      shorter than the header, bad magic, missing version, or a version this
      build does not read.  [what] names the format (e.g. ["WAL"]), [who] the
      failing operation (e.g. ["Log.load"]). *)
end

type policy =
  | Direct  (** every append goes to the log under the append mutex — the
                historical behaviour, and what {!load} rebuilds with *)
  | Buffered of { cap : int; group : bool }
      (** appends land in a per-domain buffer and reach the log only on
          {!sync} (or when the buffer holds [cap] records).  With [group]
          set, concurrent syncing domains elect a leader that flushes every
          staged batch under one append-mutex round trip — group commit.
          The durability contract (DESIGN.md §17): a record is durable iff
          the {!sync} covering it returned; a crash loses whole un-synced
          batches, never a synced prefix. *)

val default_cap : int
(** Default per-domain buffer capacity (64 records). *)

val create : ?policy:policy -> unit -> t
(** [policy] defaults to {!Direct}. *)

val policy : t -> policy

val append : t -> Record.t -> lsn
(** Under {!Direct}, appends and returns the record's LSN.  Under
    {!Buffered}, stages the record in the calling domain's buffer and
    returns [-1] — the record has no LSN until its batch flushes.  Either
    way the per-kind [wal.append.*] crash point trips first. *)

val sync : t -> unit
(** Make every record this domain appended durable (flush its buffer as one
    batch; with [group] set, possibly riding a concurrent leader's flush).
    Returns only once the batch is in the log.  No-op under {!Direct}.  The
    [wal.flush] crash point trips at the start of a non-empty sync — a crash
    there loses the whole batch. *)

val flush_all : t -> unit
(** Drain every domain's buffer.  Only meaningful on a quiesced engine (no
    in-flight appends); checkpointing uses it before reading the log. *)

val flush_count : t -> int
(** Durability round trips so far: one per append under {!Direct}, one per
    flushed batch under {!Buffered} — the "WAL flushes" the scale bench
    reports per transaction. *)

val length : t -> int
val get : t -> lsn -> Record.t
val to_list : t -> Record.t list
val iter : (lsn -> Record.t -> unit) -> t -> unit

val prefix : t -> int -> Record.t list
(** The first [n] records (all of them if [n] exceeds the length): what
    survives a crash that loses the tail. *)

val appended_since : t -> lsn -> Record.t list
(** Records with LSN >= the given one. *)

val save : t -> string -> unit
(** Serialize the log to a file: a fixed magic string and a format-version
    integer, then the records in OCaml marshal format.  Lets a crash demo or
    an operator persist and reload histories. *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] with a distinct, actionable message
    for each failure class: not a WAL file (bad or missing magic), WAL format
    version this build does not read, or a corrupt record payload. *)

val pp : Format.formatter -> t -> unit
