(** The append-only log.

    An in-memory stand-in for a durable log file: supports appending,
    sequential reads, and prefix extraction (for crash-injection tests that
    "lose" the unforced tail). *)

type t

type lsn = int
(** Log sequence number: the index of a record; the first record has LSN 0. *)

val create : unit -> t
val append : t -> Record.t -> lsn
val length : t -> int
val get : t -> lsn -> Record.t
val to_list : t -> Record.t list
val iter : (lsn -> Record.t -> unit) -> t -> unit

val prefix : t -> int -> Record.t list
(** The first [n] records (all of them if [n] exceeds the length): what
    survives a crash that loses the tail. *)

val appended_since : t -> lsn -> Record.t list
(** Records with LSN >= the given one. *)

val save : t -> string -> unit
(** Serialize the log to a file: a fixed magic string and a format-version
    integer, then the records in OCaml marshal format.  Lets a crash demo or
    an operator persist and reload histories. *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] with a distinct, actionable message
    for each failure class: not a WAL file (bad or missing magic), WAL format
    version this build does not read, or a corrupt record payload. *)

val pp : Format.formatter -> t -> unit
