module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Schema = Acc_relation.Schema
module Value = Acc_relation.Value

type t = { snapshot : Database.t; from_lsn : Log.lsn }

let take db log = { snapshot = Database.copy db; from_lsn = Log.length log }
let position t = t.from_lsn
let snapshot t = t.snapshot
let recover t log = Recovery.recover ~baseline:t.snapshot (Log.appended_since log t.from_lsn)

(* --- disk round-trip ----------------------------------------------------- *)

(* [Database.t] itself is not Marshal-safe: ordered indexes hold a [key_of]
   closure.  The dump stores rows plus the index {e specs} (name + columns)
   and rebuilds the access paths on load. *)
type table_dump = {
  d_schema : Schema.t;
  d_indexes : (string * string list) list;
  d_ordered : (string * string list) list;
  d_rows : Value.t array list;
}

type dump = { d_tables : table_dump list; d_from_lsn : int }

let save t path =
  let dump_table name =
    let tbl = Database.table t.snapshot name in
    {
      d_schema = Table.schema tbl;
      d_indexes = Table.index_specs tbl;
      d_ordered = Table.ordered_index_specs tbl;
      d_rows = Table.fold (fun _ row acc -> row :: acc) tbl [];
    }
  in
  let dump =
    {
      d_tables = List.map dump_table (Database.table_names t.snapshot);
      d_from_lsn = t.from_lsn;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Marshal.to_channel oc dump [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let dump : dump =
        try Marshal.from_channel ic
        with _ -> failwith ("Checkpoint.load: unreadable checkpoint file " ^ path)
      in
      let db = Database.create () in
      List.iter
        (fun d ->
          let tbl = Database.create_table db d.d_schema in
          List.iter (fun (name, cols) -> Table.add_index tbl ~name cols) d.d_indexes;
          List.iter (fun (name, cols) -> Table.add_ordered_index tbl ~name cols) d.d_ordered;
          List.iter (fun row -> Table.insert tbl row) d.d_rows)
        dump.d_tables;
      { snapshot = db; from_lsn = dump.d_from_lsn })

(* --- cadence ------------------------------------------------------------- *)

module Manager = struct
  type checkpoint = t

  type nonrec t = { every : int; mutable latest : checkpoint option }

  let create ?(every = 256) () =
    if every < 1 then invalid_arg "Checkpoint.Manager.create: every must be >= 1";
    { every; latest = None }

  let latest m = m.latest

  let install m ckpt = m.latest <- Some ckpt

  let maybe_take m db log =
    let since =
      match m.latest with
      | None -> Log.length log
      | Some c -> Log.length log - c.from_lsn
    in
    if since >= m.every then begin
      m.latest <- Some (take db log);
      true
    end
    else false

  let recover m ~baseline log =
    match m.latest with
    | Some c -> recover c log
    | None -> Recovery.recover ~baseline (Log.to_list log)
end
