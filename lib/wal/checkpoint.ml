module Database = Acc_relation.Database

type t = { snapshot : Database.t; from_lsn : Log.lsn }

let take db log = { snapshot = Database.copy db; from_lsn = Log.length log }
let position t = t.from_lsn
let snapshot t = t.snapshot
let recover t log = Recovery.recover ~baseline:t.snapshot (Log.appended_since log t.from_lsn)
