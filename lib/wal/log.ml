type lsn = int

(* [mu] serializes appends only: every transaction on every domain appends,
   but readers (recovery, tests, checkpointing) run on a quiesced engine *)
type t = { mutable records : Record.t array; mutable len : int; mu : Mutex.t }

(* One crash point per record kind, tripped just before the append becomes
   visible: a crash here models losing the record (and everything the
   transaction would have done after it) — the recovery-critical window for
   each record type.  Keyed by [Record.kind] so Write/undo distinguish. *)
let crash_points =
  List.map
    (fun kind -> (kind, Acc_fault.Fault.register ("wal.append." ^ kind)))
    [ "begin"; "write"; "undo"; "step_end"; "comp_area"; "commit"; "abort"; "prepare" ]

let trip_for r = Acc_fault.Fault.trip (List.assoc (Record.kind r) crash_points)

let create () =
  { records = Array.make 256 (Record.Commit { txn = -1 }); len = 0; mu = Mutex.create () }

let append t r =
  trip_for r;
  (* the clock runs only under tracing, so the disabled path stays two
     mutex ops + the one [enabled] guard *)
  let t0 = if Acc_obs.Trace.enabled () then Unix.gettimeofday () else 0. in
  Mutex.lock t.mu;
  if t.len = Array.length t.records then begin
    let bigger = Array.make (2 * t.len) r in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1;
  let lsn = t.len - 1 in
  Mutex.unlock t.mu;
  if Acc_obs.Trace.enabled () then begin
    let dur = if t0 = 0. then 0. else Unix.gettimeofday () -. t0 in
    Acc_obs.Trace.emit
      (Acc_obs.Trace.Wal_append { txn = Record.txn_of r; lsn; kind = Record.kind r; dur })
  end;
  lsn

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Log.get: lsn out of range";
  t.records.(i)

let to_list t = Array.to_list (Array.sub t.records 0 t.len)

let iter f t =
  for i = 0 to t.len - 1 do
    f i t.records.(i)
  done

let prefix t n = Array.to_list (Array.sub t.records 0 (min n t.len))

let appended_since t lsn =
  let from = max 0 lsn in
  if from >= t.len then [] else Array.to_list (Array.sub t.records from (t.len - from))

(* The on-disk format is a fixed magic string, a format-version integer, then
   the marshalled record list.  Marshal payloads are build-fragile, so the
   header is what turns "Marshal.from_channel blew up" into an actionable
   error: a foreign file fails on the magic, an old/new log fails on the
   version. *)
let magic = "ACCWAL\x00\x00"
let format_version = 1

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc format_version;
      Marshal.to_channel oc (to_list t) []);
  if Acc_obs.Trace.enabled () then
    Acc_obs.Trace.emit (Acc_obs.Trace.Wal_flush { records = t.len })

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length magic)
        with End_of_file ->
          failwith
            (Printf.sprintf "Log.load: %s is not a WAL file (shorter than the header)" path)
      in
      if header <> magic then
        failwith (Printf.sprintf "Log.load: %s is not a WAL file (bad magic)" path);
      let version =
        try input_binary_int ic
        with End_of_file ->
          failwith (Printf.sprintf "Log.load: %s is truncated (no format version)" path)
      in
      if version <> format_version then
        failwith
          (Printf.sprintf
             "Log.load: %s has WAL format version %d, this build reads version %d" path
             version format_version);
      let records : Record.t list =
        try Marshal.from_channel ic
        with _ -> failwith ("Log.load: unreadable log file " ^ path)
      in
      let t = create () in
      List.iter (fun r -> ignore (append t r)) records;
      t)

let pp ppf t = iter (fun i r -> Format.fprintf ppf "%4d %a@." i Record.pp r) t
