type lsn = int

type policy = Direct | Buffered of { cap : int; group : bool }

let default_cap = 64

(* A domain-local staging buffer: appends land here without any shared-state
   round trip and reach the log array only on {!sync} (or when [cap]
   overflows).  [items] is newest-first. *)
type buffer = { mutable items : Record.t list; mutable count : int }

(* [mu] serializes the flushed array only: every transaction on every domain
   appends, but readers (recovery, tests, checkpointing) run on a quiesced
   engine.  Under [Buffered] policies the array holds exactly the {e flushed}
   records — a crash loses the buffered tails, which is the point of the
   group-commit durability contract (DESIGN.md §17): an operation is durable
   iff its batch was flushed, and commit acknowledgement orders after the
   {!sync} of the batch holding the commit record. *)
type t = {
  mutable records : Record.t array;
  mutable len : int;
  mu : Mutex.t;
  policy : policy;
  flushes : int Atomic.t;
      (* durability round trips: one per append under [Direct], one per
         flushed batch under [Buffered] — the "WAL flushes" of bench scale *)
  buffers : buffer list Atomic.t;  (* every domain's buffer, for flush_all *)
  key : buffer Domain.DLS.key;  (* this domain's buffer (per-log key) *)
  (* group-commit state, used only by [Buffered {group = true}] *)
  gmu : Mutex.t;
  gcond : Condition.t;
  mutable staged : Record.t list list;  (* staged batches, staging order *)
  mutable staged_ticket : int;  (* ticket of the newest staged batch *)
  mutable flushed_ticket : int;  (* batches up to here are in the array *)
  mutable leader_active : bool;
}

(* One crash point per record kind, tripped just before the append becomes
   visible: a crash here models losing the record (and everything the
   transaction would have done after it) — the recovery-critical window for
   each record type.  Keyed by [Record.kind] so Write/undo distinguish. *)
let crash_points =
  List.map
    (fun kind -> (kind, Acc_fault.Fault.register ("wal.append." ^ kind)))
    [ "begin"; "write"; "undo"; "step_end"; "comp_area"; "commit"; "abort"; "prepare" ]

let trip_for r = Acc_fault.Fault.trip (List.assoc (Record.kind r) crash_points)

(* The batch-boundary crash point: tripping here loses the whole un-flushed
   batch (every record since the previous flush), the window group commit
   widens and the recovery tests must therefore cover.  Tripped at the top
   of {!sync}, before any batch is staged, so an injected crash can never
   strand group-commit followers behind a dead leader. *)
let cp_flush = Acc_fault.Fault.register "wal.flush"

let create ?(policy = Direct) () =
  let buffers = Atomic.make [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let b = { items = []; count = 0 } in
        let rec register () =
          let old = Atomic.get buffers in
          if not (Atomic.compare_and_set buffers old (b :: old)) then register ()
        in
        register ();
        b)
  in
  {
    records = Array.make 256 (Record.Commit { txn = -1 });
    len = 0;
    mu = Mutex.create ();
    policy;
    flushes = Atomic.make 0;
    buffers;
    key;
    gmu = Mutex.create ();
    gcond = Condition.create ();
    staged = [];
    staged_ticket = -1;
    flushed_ticket = -1;
    leader_active = false;
  }

let policy t = t.policy
let flush_count t = Atomic.get t.flushes

(* Append one record to the flushed array.  Caller holds [t.mu]. *)
let push_record t r =
  if t.len = Array.length t.records then begin
    let bigger = Array.make (2 * t.len) r in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1;
  t.len - 1

(* Flush one batch (append order) under a single [t.mu] round trip. *)
let flush_batch t items =
  match items with
  | [] -> ()
  | items ->
      Mutex.lock t.mu;
      List.iter (fun r -> ignore (push_record t r)) items;
      Mutex.unlock t.mu;
      Atomic.incr t.flushes;
      if Acc_obs.Trace.enabled () then
        Acc_obs.Trace.emit (Acc_obs.Trace.Wal_flush { records = List.length items })

(* Group commit: stage the batch, then either lead — drain {e every} staged
   batch under one [t.mu] round trip, repeat until nothing is staged — or
   wait until a leader's flush covers our ticket.  Commit acknowledgement
   (the caller's return from {!sync}) therefore orders after the flush of
   the batch holding the commit record, never before. *)
let sync_group t items =
  Mutex.lock t.gmu;
  t.staged_ticket <- t.staged_ticket + 1;
  let my = t.staged_ticket in
  t.staged <- t.staged @ [ items ];
  if t.leader_active then begin
    while t.flushed_ticket < my do
      Condition.wait t.gcond t.gmu
    done;
    Mutex.unlock t.gmu
  end
  else begin
    t.leader_active <- true;
    while t.flushed_ticket < t.staged_ticket do
      let batches = t.staged in
      let upto = t.staged_ticket in
      t.staged <- [];
      Mutex.unlock t.gmu;
      flush_batch t (List.concat batches);
      Mutex.lock t.gmu;
      t.flushed_ticket <- upto;
      Condition.broadcast t.gcond
    done;
    t.leader_active <- false;
    Mutex.unlock t.gmu
  end

(* Make everything this domain appended durable.  No-op under [Direct]
   (appends are already in the array) and on an empty buffer. *)
let sync t =
  match t.policy with
  | Direct -> ()
  | Buffered { group; _ } ->
      let b = Domain.DLS.get t.key in
      if b.items <> [] then begin
        let items = List.rev b.items in
        b.items <- [];
        b.count <- 0;
        Acc_fault.Fault.trip cp_flush;
        if group then sync_group t items else flush_batch t items
      end

(* Drain every domain's buffer.  Only callable on a quiesced engine (no
   in-flight appends), e.g. by {!Executor.checkpoint} before it reads the
   log; buffer order across domains is arbitrary, which is fine — records
   of one domain stay in order, and inter-domain order of unsynced records
   was never promised. *)
let flush_all t =
  match t.policy with
  | Direct -> ()
  | Buffered _ ->
      List.iter
        (fun b ->
          if b.items <> [] then begin
            let items = List.rev b.items in
            b.items <- [];
            b.count <- 0;
            flush_batch t items
          end)
        (Atomic.get t.buffers)

let append t r =
  trip_for r;
  match t.policy with
  | Buffered { cap; _ } ->
      let b = Domain.DLS.get t.key in
      b.items <- r :: b.items;
      b.count <- b.count + 1;
      if Acc_obs.Trace.enabled () then
        Acc_obs.Trace.emit
          (Acc_obs.Trace.Wal_append { txn = Record.txn_of r; lsn = -1; kind = Record.kind r; dur = 0. });
      if b.count >= cap then sync t;
      (* buffered records have no LSN until their batch flushes *)
      -1
  | Direct ->
      (* the clock runs only under tracing, so the disabled path stays two
         mutex ops + the one [enabled] guard *)
      let t0 = if Acc_obs.Trace.enabled () then Unix.gettimeofday () else 0. in
      Mutex.lock t.mu;
      let lsn = push_record t r in
      Mutex.unlock t.mu;
      Atomic.incr t.flushes;
      if Acc_obs.Trace.enabled () then begin
        let dur = if t0 = 0. then 0. else Unix.gettimeofday () -. t0 in
        Acc_obs.Trace.emit
          (Acc_obs.Trace.Wal_append { txn = Record.txn_of r; lsn; kind = Record.kind r; dur })
      end;
      lsn

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Log.get: lsn out of range";
  t.records.(i)

let to_list t = Array.to_list (Array.sub t.records 0 t.len)

let iter f t =
  for i = 0 to t.len - 1 do
    f i t.records.(i)
  done

let prefix t n = Array.to_list (Array.sub t.records 0 (min n t.len))

let appended_since t lsn =
  let from = max 0 lsn in
  if from >= t.len then [] else Array.to_list (Array.sub t.records from (t.len - from))

(* The on-disk format is a fixed magic string, a format-version integer, then
   the marshalled record list.  Marshal payloads are build-fragile, so the
   header is what turns "Marshal.from_channel blew up" into an actionable
   error: a foreign file fails on the magic, an old/new log fails on the
   version.  The header discipline is shared — the coordinator's durable
   decision log and the RPC framing reuse it with their own magic. *)
module Header = struct
  let size ~magic = String.length magic + 4

  let to_string ~magic ~version =
    let m = String.length magic in
    let b = Bytes.create (m + 4) in
    Bytes.blit_string magic 0 b 0 m;
    Bytes.set_int32_be b m (Int32.of_int version);
    Bytes.unsafe_to_string b

  let check ~magic ~version ~what ~who ~path s =
    let m = String.length magic in
    if String.length s < m then
      failwith
        (Printf.sprintf "%s: %s is not a %s file (shorter than the header)" who path what);
    if String.sub s 0 m <> magic then
      failwith (Printf.sprintf "%s: %s is not a %s file (bad magic)" who path what);
    if String.length s < m + 4 then
      failwith (Printf.sprintf "%s: %s is truncated (no format version)" who path);
    let v = Int32.to_int (String.get_int32_be s m) in
    if v <> version then
      failwith
        (Printf.sprintf "%s: %s has %s format version %d, this build reads version %d" who
           path what v version)
end

let magic = "ACCWAL\x00\x00"
let format_version = 1

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Header.to_string ~magic ~version:format_version);
      Marshal.to_channel oc (to_list t) []);
  if Acc_obs.Trace.enabled () then
    Acc_obs.Trace.emit (Acc_obs.Trace.Wal_flush { records = t.len })

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        let n = Header.size ~magic in
        let b = Buffer.create n in
        (try
           while Buffer.length b < n do
             Buffer.add_channel b ic 1
           done
         with End_of_file -> ());
        Buffer.contents b
      in
      Header.check ~magic ~version:format_version ~what:"WAL" ~who:"Log.load" ~path header;
      let records : Record.t list =
        try Marshal.from_channel ic
        with _ -> failwith ("Log.load: unreadable log file " ^ path)
      in
      let t = create () in
      List.iter (fun r -> ignore (append t r)) records;
      t)

let pp ppf t = iter (fun i r -> Format.fprintf ppf "%4d %a@." i Record.pp r) t
