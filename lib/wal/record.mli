(** Log records.

    Physical images for step-atomic undo/redo, plus the ACC-specific records
    of §5: the end-of-step record and the compensation work area that the
    implemented ACC stores "in a database table for compensation".  We keep
    the work area in the log itself, which is equivalent for recovery
    purposes and keeps the store free of bookkeeping tables. *)

type write = {
  w_table : string;
  w_key : Acc_relation.Value.t list;
  w_before : Acc_relation.Value.t array option;  (** [None] for an insert *)
  w_after : Acc_relation.Value.t array option;  (** [None] for a delete *)
}

type t =
  | Begin of { txn : int; txn_type : string; multi_step : bool }
  | Write of { txn : int; write : write; undo : bool }
      (** [undo = true] marks a compensation-log record written while rolling
          back (a CLR): recovery must never undo it again. *)
  | Step_end of { txn : int; step_index : int }
  | Comp_area of { txn : int; completed_steps : int; area : (string * Acc_relation.Value.t) list }
      (** Work area checkpoint enabling the compensating step to run after a
          crash: the forward steps completed so far and the named values the
          compensation needs. *)
  | Prepare of { txn : int; gid : int }
      (** Two-phase-commit participant vote: the branch of global transaction
          [gid] has run all its steps and can commit.  Until a coordinator
          decision is known the transaction is {e in doubt}: recovery may
          neither commit nor compensate it on its own. *)
  | Commit of { txn : int }
  | Abort of { txn : int }
      (** Transaction fully undone (physically, or logically via its
          compensating step); it holds nothing and needs nothing. *)

val txn_of : t -> int

val kind : t -> string
(** A short record-kind tag (["begin"], ["write"], ["undo"], ["step_end"],
    ["comp_area"], ["prepare"], ["commit"], ["abort"]) for trace events and
    summaries. *)

val pp : Format.formatter -> t -> unit

val invert : write -> write
(** The physical undo image: swaps before and after. *)
