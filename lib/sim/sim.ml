type t = {
  mutable clock : float;
  mutable seq : int;
  events : (unit -> unit) Pqueue.t;
  mutable executed : int;
  mutable running : bool;
}

type _ Effect.t += Delay : float -> unit Effect.t

(* The handler needs the world to schedule continuations; processes find it
   through the closure installed by [spawn]. *)

let create () =
  { clock = 0.; seq = 0; events = Pqueue.create (); executed = 0; running = false }

let now t = t.clock

let schedule t ~at f =
  t.seq <- t.seq + 1;
  Pqueue.push t.events ~time:(Float.max at t.clock) ~seq:t.seq f

let delay dt = Effect.perform (Delay dt)

module Condition = struct
  type 'a waiter = { w_resume : 'a -> unit }

  type 'a cond = { mutable queue : 'a waiter list (* FIFO: append at tail *) }

  let create () = { queue = [] }
  let waiters c = List.length c.queue

  type _ Effect.t += Wait : 'a cond -> 'a Effect.t

  let wait c = Effect.perform (Wait c)

  let signal t c v =
    match c.queue with
    | [] -> false
    | w :: rest ->
        c.queue <- rest;
        schedule t ~at:t.clock (fun () -> w.w_resume v);
        true

  let broadcast t c v =
    let n = waiters c in
    while signal t c v do
      ()
    done;
    n
end

let handler t : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Delay dt ->
            Some
              (fun (k : (b, unit) Effect.Deep.continuation) ->
                schedule t ~at:(t.clock +. Float.max 0. dt) (fun () ->
                    Effect.Deep.continue k ()))
        | Condition.Wait c ->
            Some
              (fun (k : (b, unit) Effect.Deep.continuation) ->
                c.Condition.queue <-
                  c.Condition.queue
                  @ [ { Condition.w_resume = (fun v -> Effect.Deep.continue k v) } ])
        | _ -> None);
  }

let spawn t ?at f =
  let at = Option.value ~default:t.clock at in
  schedule t ~at (fun () -> Effect.Deep.match_with f () (handler t))

let run ?until ?(max_events = 50_000_000) t =
  t.running <- true;
  let continue_loop = ref true in
  while !continue_loop do
    match Pqueue.pop t.events with
    | None -> continue_loop := false
    | Some (time, _, f) -> (
        match until with
        | Some stop when time > stop ->
            (* freeze: drop this and all later events *)
            t.clock <- stop;
            continue_loop := false
        | Some _ | None ->
            t.clock <- time;
            t.executed <- t.executed + 1;
            if t.executed > max_events then failwith "Sim.run: event budget exhausted";
            f ())
  done;
  t.running <- false

let events_executed t = t.executed

module Mailbox = struct
  type 'a mailbox = { queue : 'a Queue.t; waiters : 'a Condition.cond }

  let create () = { queue = Queue.create (); waiters = Condition.create () }
  let length m = Queue.length m.queue

  let send world m v =
    (* hand the message straight to a blocked receiver if there is one *)
    if not (Condition.signal world m.waiters v) then Queue.add v m.queue

  let recv m = if Queue.is_empty m.queue then Condition.wait m.waiters else Queue.pop m.queue
  let try_recv m = Queue.take_opt m.queue
end

module Resource = struct
  type resource = {
    world : t;
    cap : int;
    mutable busy : int;
    mutable busy_time : float;
    pending : unit Condition.cond;
  }

  let create world ~capacity =
    if capacity < 1 then invalid_arg "Resource.create: capacity must be positive";
    { world; cap = capacity; busy = 0; busy_time = 0.; pending = Condition.create () }

  let capacity r = r.cap
  let in_use r = r.busy
  let queue_length r = Condition.waiters r.pending

  let acquire r =
    if r.busy < r.cap && Condition.waiters r.pending = 0 then r.busy <- r.busy + 1
    else
      (* the releaser hands its unit over without it ever becoming free, so a
         latecomer cannot sneak past the FIFO queue *)
      Condition.wait r.pending

  let release r =
    if not (Condition.signal r.world r.pending ()) then r.busy <- r.busy - 1

  let use r dt =
    acquire r;
    delay dt;
    r.busy_time <- r.busy_time +. dt;
    release r

  let busy_time r = r.busy_time

  let utilization r ~at = if at <= 0. then 0. else r.busy_time /. (float_of_int r.cap *. at)
end
