(** Deterministic discrete-event simulator.

    Processes are OCaml-5 effect fibers: a process calls {!delay} to let
    simulated time pass, waits on {!Condition}s, and occupies {!Resource}
    units (the database server pool).  All continuations resume from the
    {!run} loop, so the stack stays flat regardless of process count.

    Determinism: events fire in (time, insertion-sequence) order and nothing
    reads wall-clock time, so a run is a pure function of the workload's seeded
    PRNG streams — every benchmark number is reproducible. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time (seconds, by convention). *)

val spawn : t -> ?at:float -> (unit -> unit) -> unit
(** Register a process to start at time [at] (default: now). *)

val delay : float -> unit
(** Suspend the calling process for the given simulated duration.  Must be
    called from within a process of the running simulation. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drive the event loop until no events remain, the clock passes [until]
    (remaining events are dropped), or [max_events] (default 50 million)
    fires — the runaway guard raises [Failure]. *)

val events_executed : t -> int

module Condition : sig
  (** Typed wait queues.  [wait] suspends the caller; each [signal] resumes
      exactly one waiter (FIFO) with the value, at the current simulated
      time. *)

  type 'a cond

  val create : unit -> 'a cond
  val wait : 'a cond -> 'a
  val signal : t -> 'a cond -> 'a -> bool
  (** [false] if nobody was waiting (the value is dropped). *)

  val broadcast : t -> 'a cond -> 'a -> int
  val waiters : 'a cond -> int
end

module Mailbox : sig
  (** Typed FIFO message queues between processes: [recv] blocks while the
      queue is empty; [send] never blocks. *)

  type 'a mailbox

  val create : unit -> 'a mailbox
  val send : t -> 'a mailbox -> 'a -> unit
  val recv : 'a mailbox -> 'a
  val try_recv : 'a mailbox -> 'a option
  val length : 'a mailbox -> int
end

module Resource : sig
  (** A multi-unit FIFO resource — the pool of database server processes.
      [use r dt] occupies one unit for [dt] simulated seconds, queueing first
      if all units are busy.  Utilisation accounting feeds the experiment
      reports. *)

  type resource

  val create : t -> capacity:int -> resource
  val capacity : resource -> int
  val use : resource -> float -> unit
  val acquire : resource -> unit
  val release : resource -> unit
  val in_use : resource -> int
  val queue_length : resource -> int

  val busy_time : resource -> float
  (** Total unit-seconds of completed [use] occupancy. *)

  val utilization : resource -> at:float -> float
  (** [busy_time / (capacity * at)]. *)
end
