type t = {
  point_op : float;
  scan_base : float;
  scan_row : float;
  lock_op : float;
  assertional_op : float;
  step_end : float;
  admission : float;
}

(* Relative magnitudes follow the paper's description: assertional locking
   costs are "comparable to that for conventional locks" (§3.2), and the
   per-step overhead (log record + work-area save) is a noticeable fraction
   of a point operation (§5). *)
let default =
  {
    point_op = 1.0;
    scan_base = 0.5;
    scan_row = 0.05;
    lock_op = 0.15;
    assertional_op = 0.15;
    step_end = 1.2;
    admission = 0.4;
  }
