(** Systematic interleaving exploration: run a set of transaction fibers
    under {e every} schedule the cooperative scheduler could produce, and
    check an invariant after each one.

    The paper argues semantic correctness by proof outline; this module makes
    the claim machine-checkable for concrete instances — exhaustively, not
    statistically.  Wherever more than one fiber is runnable (fibers branch
    at {!Txn_effect.yield} points and lock grants), the explorer forks the
    schedule.  Each schedule replays from scratch against a fresh engine, so
    the workload factory must be deterministic.

    The state space is exponential in the yield count; [max_schedules]
    bounds the walk. *)

type outcome = {
  schedules : int;  (** schedules actually executed *)
  exhausted : bool;  (** false if [max_schedules] stopped the walk early *)
  failure : (string * int list) option;
      (** first failing schedule: the invariant's message and the choice
          trace that reproduces it via {!replay} *)
}

val explore :
  ?max_schedules:int ->
  ?policy:Schedule.victim_policy ->
  make:(unit -> Executor.t * (unit -> unit) list) ->
  check:(Executor.t -> (unit, string) result) ->
  unit ->
  outcome
(** Depth-first walk over the schedule tree ([max_schedules] default 10_000).
    Stops at the first invariant failure. *)

val replay :
  ?policy:Schedule.victim_policy ->
  make:(unit -> Executor.t * (unit -> unit) list) ->
  int list ->
  Executor.t
(** Re-execute one schedule by its choice trace and return the engine (for
    debugging a failure). *)
