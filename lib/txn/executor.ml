module Database = Acc_relation.Database
module Table = Acc_relation.Table
module Value = Acc_relation.Value
module Predicate = Acc_relation.Predicate
module Mode = Acc_lock.Mode
module Resource_id = Acc_lock.Resource_id
module Lock_table = Acc_lock.Lock_table
module Lock_request = Acc_lock.Lock_request
module Lock_service = Acc_lock.Lock_service
module Log = Acc_wal.Log
module Record = Acc_wal.Record
module Recovery = Acc_wal.Recovery
module Trace = Acc_obs.Trace
module Fault = Acc_fault.Fault

(* Crash points at the engine's recovery-critical state transitions (the
   per-record points inside [Log.append] cover each record's durability;
   these cover the windows {e between} appends): a completed work area whose
   step-end is not yet durable, a durable commit whose locks are not yet
   released, a lock release that never happens, and a compensating write. *)
let cp_step_area = Fault.register "exec.step_area"
let cp_commit_durable = Fault.register "exec.commit.durable"
let cp_release = Fault.register "exec.release"
let cp_comp_write = Fault.register "comp.write"

(* the 2PC participant's vote window: the Prepare record is durable but the
   coordinator has not decided — a crash here leaves the branch in doubt *)
let cp_prepare = Fault.register "dist.prepare"

type table_wrap = { wrap : 'a. string -> (unit -> 'a) -> 'a }

type config = {
  mutable on_wakeup : Lock_table.wakeup list -> unit;
  mutable charge : float -> unit;
  mutable trace : (int -> [ `R | `W ] -> Resource_id.t -> unit) option;
  mutable clock : unit -> float;
  (* time source for step latencies: the simulator installs virtual time, the
     parallel driver wall-clock; default (constantly 0) yields 0 durations *)
  mutable on_step_end : step_type:int -> dur:float -> unit;
  mutable table_wrap : table_wrap;
  (* every storage-engine access runs inside [table_wrap.wrap tname]; the
     parallel engine installs a per-table mutex here so hashtable/index
     structure is never mutated concurrently (row-content races are already
     excluded by the lock protocol) *)
  mutable lock_deadline : float option;
  (* relative lock-wait budget in seconds applied to every non-compensating
     acquisition (the absolute deadline is [clock () + budget]); [None]
     disables timeouts *)
}

type t = {
  db : Database.t;
  service : Lock_service.t;
  log : Log.t;
  cost : Cost_model.t;
  config : config;
  next_txn : int Atomic.t;
  active : int Atomic.t;
}

type ctx = {
  eng : t;
  txn : int;
  txn_type : string;
  multi_step : bool;
  mutable step_type : int;
  mutable step_index : int;
  mutable compensating : bool;
  mutable undo_stack : Record.write list; (* newest first *)
  mutable on_lock : Resource_id.t -> Mode.t -> unit;
  mutable on_before_lock : Resource_id.t -> Mode.t -> unit;
  mutable step_t0 : float;
  mutable finished : bool;
  mutable pre_acquired : (Mode.t * Resource_id.t) list;
      (* the current step's batch-acquired footprint; a dynamic acquire of
         an exact member is already held and skips the lock manager.  Reset
         at step start and on any mid-transaction release; the short-lock
         paths only release locks that were not already held, so a memo
         entry stays held for the step's whole lifetime. *)
}

let make ?(cost = Cost_model.default) ?wal_policy service db =
  {
    db;
    service;
    log = Log.create ?policy:wal_policy ();
    cost;
    config =
      {
        on_wakeup = (fun _ -> ());
        charge = (fun _ -> ());
        trace = None;
        clock = (fun () -> 0.);
        on_step_end = (fun ~step_type:_ ~dur:_ -> ());
        table_wrap = { wrap = (fun _ f -> f ()) };
        lock_deadline = None;
      };
    next_txn = Atomic.make 1;
    active = Atomic.make 0;
  }

(* The sequential backend's wakeup routing is a knot: the service's [deliver]
   must call [t.config.on_wakeup], but the service is built before [t].  A
   forward reference unties it — [on_wakeup] is mutable anyway, so the one
   extra indirection changes nothing observable. *)
let create ?cost ?wal_policy ~sem db =
  let table = Lock_table.create sem in
  let deliver_ref = ref (fun (_ : Lock_table.wakeup list) -> ()) in
  let service =
    Lock_service.of_table
      ~wait:(fun ~ticket ~txn -> Effect.perform (Txn_effect.Wait_lock { ticket; txn }))
      ~deliver:(fun wakeups -> !deliver_ref wakeups)
      table
  in
  let t = make ?cost ?wal_policy service db in
  deliver_ref := (fun wakeups -> if wakeups <> [] then t.config.on_wakeup wakeups);
  t

let create_with ?cost ?wal_policy ~service db = make ?cost ?wal_policy service db

let db t = t.db
let lock_service t = t.service
let log t = t.log
let set_on_wakeup t f = t.config.on_wakeup <- f
let set_charge t f = t.config.charge <- f
let set_trace t f = t.config.trace <- f
let set_clock t f = t.config.clock <- f
let set_on_step_end t f = t.config.on_step_end <- f
let set_table_wrap t w = t.config.table_wrap <- w
let set_lock_deadline t d = t.config.lock_deadline <- d
let lock_deadline t = t.config.lock_deadline

(* monotonic: only moves the counter forward, so it composes with
   [adopt_pending]'s bump and is safe to call on a live engine *)
let set_next_txn t base =
  let rec bump () =
    let cur = Atomic.get t.next_txn in
    if cur < base && not (Atomic.compare_and_set t.next_txn cur base) then bump ()
  in
  bump ()
let charge t units = t.config.charge units
let cost t = t.cost

(* --- lock service dispatch ---------------------------------------------- *)

let lock_release t ~txn mode res = Lock_service.release t.service ~txn mode res
let lock_release_where t ~txn pred = Lock_service.release_where t.service ~txn pred
let lock_release_all t ~txn = Lock_service.release_all t.service ~txn
let lock_held_by t ~txn = Lock_service.held_by t.service ~txn

(* --- transaction lifecycle ---------------------------------------------- *)

let begin_txn t ~txn_type ~multi_step =
  let txn = Atomic.fetch_and_add t.next_txn 1 in
  Atomic.incr t.active;
  ignore (Log.append t.log (Record.Begin { txn; txn_type; multi_step }));
  if Trace.enabled () then Trace.emit (Trace.Txn_begin { txn; txn_type });
  {
    eng = t;
    txn;
    txn_type;
    multi_step;
    step_type = 0;
    step_index = 1;
    compensating = false;
    undo_stack = [];
    on_lock = (fun _ _ -> ());
    on_before_lock = (fun _ _ -> ());
    step_t0 = 0.;
    finished = false;
    pre_acquired = [];
  }

let txn_id ctx = ctx.txn
let txn_type ctx = ctx.txn_type
let engine ctx = ctx.eng

let set_step ctx ~step_type ~step_index =
  ctx.step_type <- step_type;
  ctx.step_index <- step_index;
  ctx.pre_acquired <- [];
  ctx.step_t0 <- ctx.eng.config.clock ();
  if Trace.enabled () then
    if ctx.compensating then
      (* the runtime enters the compensating step at index completed+1 *)
      Trace.emit (Trace.Comp_run { txn = ctx.txn; step_type; from_step = step_index })
    else Trace.emit (Trace.Step_begin { txn = ctx.txn; step_type; step_index })

let step_type ctx = ctx.step_type
let step_index ctx = ctx.step_index
let set_compensating ctx flag = ctx.compensating <- flag
let compensating ctx = ctx.compensating
let set_on_lock ctx f = ctx.on_lock <- f
let set_on_before_lock ctx f = ctx.on_before_lock <- f
let finished ctx = ctx.finished

let trace ctx rw res =
  match ctx.eng.config.trace with None -> () | Some f -> f ctx.txn rw res

let with_table ctx tname f = ctx.eng.config.table_wrap.wrap tname f

(* compensating steps never carry a deadline (§3.4) *)
let deadline_for ctx =
  if ctx.compensating then None
  else Option.map (fun d -> ctx.eng.config.clock () +. d) ctx.eng.config.lock_deadline

let request_of ctx ~admission ~deadline mode res =
  {
    Lock_request.txn = ctx.txn;
    step_type = ctx.step_type;
    admission;
    compensating = ctx.compensating;
    deadline;
    mode;
    resource = res;
  }

(* Checked lock acquisition: grant, or suspend (Wait_lock effect /
   domain-blocking wait, depending on the backend).  When control returns
   normally the lock is held. *)
let acquire ctx ?(admission = false) mode res =
  if
    (not admission)
    && ctx.pre_acquired <> []
    && List.exists
         (fun (m, r) -> Mode.equal m mode && Resource_id.equal r res)
         ctx.pre_acquired
  then
    (* this exact request is in the step's batch-acquired footprint: the lock
       is held and the hooks and charge already ran at batch time with the
       same mode, so the re-entrant round trip through the lock manager is
       pure duplication — skip it.  (Exact mode match only: the lock hooks
       are mode-sensitive, so a covering-but-different mode must still go
       through the full path.) *)
    ()
  else begin
    (* assertional locks that must be in place before the data lock (legacy
       isolation) are taken here, ahead of the conventional request, so the
       transaction never waits for them while already holding the data lock *)
    if Mode.conventional mode then ctx.on_before_lock res mode;
    charge ctx.eng
      (if Mode.conventional mode then ctx.eng.cost.lock_op else ctx.eng.cost.assertional_op);
    Lock_service.acquire ctx.eng.service
      (request_of ctx ~admission ~deadline:(deadline_for ctx) mode res);
    ctx.on_lock res mode
  end

(* Batched acquisition of a step's declared footprint.  Charging, the
   before/after hooks, and the deadline policy are identical to running
   [acquire] over the list; only the lock-manager interaction is batched
   (canonical order, one shard-mutex round-trip per shard on the sharded
   backend).  Later singleton acquires of the same resources are re-entrant
   grants, so over-declared footprints cost a hash probe, not a conflict. *)
let acquire_footprint ctx ?(admission = false) pairs =
  match pairs with
  | [] -> ()
  | pairs ->
      List.iter
        (fun (mode, res) ->
          if Mode.conventional mode then ctx.on_before_lock res mode;
          charge ctx.eng
            (if Mode.conventional mode then ctx.eng.cost.lock_op
             else ctx.eng.cost.assertional_op))
        pairs;
      let deadline = deadline_for ctx in
      Lock_service.acquire_batch ctx.eng.service
        (List.map (fun (mode, res) -> request_of ctx ~admission ~deadline mode res) pairs);
      List.iter (fun (mode, res) -> ctx.on_lock res mode) pairs;
      (* admission-flagged requests carry gate semantics the memo must not
         absorb, so only a plain footprint feeds the re-entrancy skip *)
      if not admission then ctx.pre_acquired <- pairs;
      if Trace.enabled () then
        Trace.emit
          (Trace.Batch_acquired
             { txn = ctx.txn; step_type = ctx.step_type; count = List.length pairs })

let attach_request_of ctx mode res =
  {
    Lock_request.txn = ctx.txn;
    step_type = ctx.step_type;
    admission = false;
    compensating = false;
    deadline = None;
    mode;
    resource = res;
  }

let attach_lock ctx mode res =
  charge ctx.eng ctx.eng.cost.assertional_op;
  Lock_service.attach ctx.eng.service (attach_request_of ctx mode res)

let attach_locks ctx pairs =
  match pairs with
  | [] -> ()
  | pairs ->
      List.iter (fun _ -> charge ctx.eng ctx.eng.cost.assertional_op) pairs;
      Lock_service.attach_batch ctx.eng.service
        (List.map (fun (mode, res) -> attach_request_of ctx mode res) pairs)

let lock_tuple_read ctx tname key =
  acquire ctx Mode.IS (Resource_id.Table tname);
  acquire ctx Mode.S (Resource_id.Tuple (tname, key))

let lock_tuple_write ctx tname key =
  acquire ctx Mode.IX (Resource_id.Table tname);
  acquire ctx Mode.X (Resource_id.Tuple (tname, key))

let table_of ctx tname = Database.table ctx.eng.db tname

let read ctx tname key =
  lock_tuple_read ctx tname key;
  charge ctx.eng ctx.eng.cost.point_op;
  trace ctx `R (Resource_id.Tuple (tname, key));
  let table = table_of ctx tname in
  with_table ctx tname (fun () -> Table.get table key)

let read_exn ctx tname key =
  match read ctx tname key with
  | Some row -> row
  | None -> raise (Table.No_such_row (tname, key))

let read_committed ctx tname key =
  let res = Resource_id.Tuple (tname, key) in
  let held_before =
    List.exists (fun (r, m) -> Resource_id.equal r res && Mode.covers m Mode.S)
      (lock_held_by ctx.eng ~txn:ctx.txn)
  in
  lock_tuple_read ctx tname key;
  charge ctx.eng ctx.eng.cost.point_op;
  trace ctx `R res;
  let table = table_of ctx tname in
  let row = with_table ctx tname (fun () -> Table.get table key) in
  (* short lock: give the S back straight away unless it was already held *)
  if not held_before then lock_release ctx.eng ~txn:ctx.txn Mode.S res;
  row

let charge_scan ctx scanned =
  charge ctx.eng
    (ctx.eng.cost.scan_base +. (ctx.eng.cost.scan_row *. float_of_int scanned))

let scan ctx tname ?where () =
  acquire ctx Mode.S (Resource_id.Table tname);
  let table = table_of ctx tname in
  let rows, cost =
    with_table ctx tname (fun () ->
        let rows = Table.scan ?where table in
        (rows, Table.last_scan_cost table))
  in
  charge_scan ctx cost;
  trace ctx `R (Resource_id.Table tname);
  rows

let scan_committed ctx tname ?where () =
  let res = Resource_id.Table tname in
  let held_before =
    List.exists (fun (r, m) -> Resource_id.equal r res && Mode.covers m Mode.S)
      (lock_held_by ctx.eng ~txn:ctx.txn)
  in
  acquire ctx Mode.S res;
  let table = table_of ctx tname in
  let rows, cost =
    with_table ctx tname (fun () ->
        let rows = Table.scan ?where table in
        (rows, Table.last_scan_cost table))
  in
  charge_scan ctx cost;
  trace ctx `R res;
  if not held_before then lock_release ctx.eng ~txn:ctx.txn Mode.S res;
  rows

let scan_keys ctx tname ?where () =
  acquire ctx Mode.S (Resource_id.Table tname);
  let table = table_of ctx tname in
  let keys, cost =
    with_table ctx tname (fun () ->
        let keys = Table.scan_keys ?where table in
        (keys, Table.last_scan_cost table))
  in
  charge_scan ctx cost;
  trace ctx `R (Resource_id.Table tname);
  keys

let peek_keys ctx tname ?where () =
  (* index peek without row locks (degree-1 read): the caller X-locks and
     re-verifies whichever candidate it acts on.  Sound when the predicate's
     answer can only grow monotonically (e.g. the oldest queue entry of a
     district cannot be displaced by inserts, which always carry higher
     ids). *)
  acquire ctx Mode.IS (Resource_id.Table tname);
  let table = table_of ctx tname in
  let keys, cost =
    with_table ctx tname (fun () ->
        let keys = Table.scan_keys ?where table in
        (keys, Table.last_scan_cost table))
  in
  charge_scan ctx cost;
  keys

let scan_keys_for_update ctx tname ?where () =
  (* scan with intent to modify: take the table lock exclusively up front so
     that two such scanners serialize instead of meeting in the classic
     S-then-upgrade deadlock (the update-mode-lock idiom) *)
  acquire ctx Mode.X (Resource_id.Table tname);
  let table = table_of ctx tname in
  let keys, cost =
    with_table ctx tname (fun () ->
        let keys = Table.scan_keys ?where table in
        (keys, Table.last_scan_cost table))
  in
  charge_scan ctx cost;
  trace ctx `R (Resource_id.Table tname);
  keys

let log_write ctx write =
  if ctx.compensating then Fault.trip cp_comp_write;
  (* a compensating step's writes are compensation records: recovery replays
     them like any write, but if the step's end record is not durable they
     are physically rewound rather than treated as forward progress *)
  ignore (Log.append ctx.eng.log (Record.Write { txn = ctx.txn; write; undo = ctx.compensating }));
  ctx.undo_stack <- write :: ctx.undo_stack

let insert ctx tname row =
  let table = table_of ctx tname in
  let key = Acc_relation.Schema.key_of_row (Table.schema table) row in
  lock_tuple_write ctx tname key;
  charge ctx.eng ctx.eng.cost.point_op;
  trace ctx `W (Resource_id.Tuple (tname, key));
  with_table ctx tname (fun () -> Table.insert table row);
  log_write ctx
    { Record.w_table = tname; w_key = key; w_before = None; w_after = Some (Array.copy row) }

let update ctx tname key f =
  lock_tuple_write ctx tname key;
  charge ctx.eng ctx.eng.cost.point_op;
  trace ctx `W (Resource_id.Tuple (tname, key));
  let table = table_of ctx tname in
  let before, after =
    with_table ctx tname (fun () ->
        let before = Table.get_exn table key in
        let after = Table.update table key f in
        (before, after))
  in
  log_write ctx
    { Record.w_table = tname; w_key = key; w_before = Some before; w_after = Some after };
  after

let set_column ctx tname key col v =
  ignore
    (update ctx tname key (fun row ->
         row.(Acc_relation.Schema.position (Table.schema (table_of ctx tname)) col) <- v;
         row))

let delete ctx tname key =
  lock_tuple_write ctx tname key;
  charge ctx.eng ctx.eng.cost.point_op;
  trace ctx `W (Resource_id.Tuple (tname, key));
  let table = table_of ctx tname in
  let before = with_table ctx tname (fun () -> Table.delete table key) in
  log_write ctx { Record.w_table = tname; w_key = key; w_before = Some before; w_after = None }

let undo_stack_size ctx = List.length ctx.undo_stack

let rollback_current_step ctx =
  List.iter
    (fun write ->
      let undo = Record.invert write in
      ignore (Log.append ctx.eng.log (Record.Write { txn = ctx.txn; write = undo; undo = true }));
      charge ctx.eng ctx.eng.cost.point_op;
      with_table ctx undo.Record.w_table (fun () -> Recovery.apply_write ctx.eng.db undo))
    ctx.undo_stack;
  ctx.undo_stack <- []

let end_step ctx ~comp_area =
  (* the work area must be durable before the step counts as completed: a
     crash between the two records must find either an undoable step or a
     compensable one, never a completed step without its area *)
  (match comp_area with
  | Some area ->
      ignore
        (Log.append ctx.eng.log
           (Record.Comp_area { txn = ctx.txn; completed_steps = ctx.step_index; area }));
      (* the window where the area is durable but the step is not yet
         complete: recovery must treat the step as never having happened *)
      Fault.trip cp_step_area
  | None -> ());
  ignore (Log.append ctx.eng.log (Record.Step_end { txn = ctx.txn; step_index = ctx.step_index }));
  charge ctx.eng ctx.eng.cost.step_end;
  ctx.eng.config.on_step_end ~step_type:ctx.step_type
    ~dur:(ctx.eng.config.clock () -. ctx.step_t0);
  if Trace.enabled () then
    Trace.emit (Trace.Step_end { txn = ctx.txn; step_index = ctx.step_index });
  ctx.undo_stack <- []

let release_locks ctx pred =
  (* any mid-transaction release invalidates the footprint memo wholesale —
     a later acquire of a released pair must go back to the lock manager *)
  ctx.pre_acquired <- [];
  (* WAL-before-unlock: once a conventional lock drops at a step boundary,
     a foreign transaction may read (and log decisions over) this step's
     writes, so the records describing them must be durable first — under a
     buffered policy that means flushing this domain's batch *)
  Log.sync ctx.eng.log;
  lock_release_where ctx.eng ~txn:ctx.txn pred

let release_everything ctx =
  (* WAL-before-unlock, as in [release_locks]: nothing of this transaction
     may become foreign-visible before its records are durable *)
  Log.sync ctx.eng.log;
  (* a crash here leaves every lock of the transaction dangling in the dying
     process; the restarted engine must come up with an empty lock table *)
  Fault.trip cp_release;
  lock_release_all ctx.eng ~txn:ctx.txn

let finish ctx =
  ctx.finished <- true;
  Atomic.decr ctx.eng.active

let prepare ctx ~gid =
  (* participant vote: all steps have run and their conventional locks are
     released; the assertional and compensation locks stay held across the
     in-doubt window so foreign steps that would invalidate either outcome
     keep blocking until the decision arrives *)
  assert (not ctx.finished);
  ignore (Log.append ctx.eng.log (Record.Prepare { txn = ctx.txn; gid }));
  (* the YES vote must be durable before the coordinator may count it: the
     sync orders the Prepare record's flush before [cp_prepare] — the crash
     window after which recovery must re-derive the in-doubt branch *)
  Log.sync ctx.eng.log;
  Fault.trip cp_prepare;
  if Trace.enabled () then Trace.emit (Trace.Prepare { txn = ctx.txn; gid })

let commit ctx =
  assert (not ctx.finished);
  ignore (Log.append ctx.eng.log (Record.Commit { txn = ctx.txn }));
  (* group-commit durability contract: the commit is acknowledged (and the
     locks released) only after the batch holding the Commit record flushed *)
  Log.sync ctx.eng.log;
  (* commit durable, locks still held *)
  Fault.trip cp_commit_durable;
  if Trace.enabled () then Trace.emit (Trace.Txn_commit { txn = ctx.txn });
  finish ctx;
  release_everything ctx

let abort_physical ctx =
  assert (not ctx.finished);
  rollback_current_step ctx;
  ignore (Log.append ctx.eng.log (Record.Abort { txn = ctx.txn }));
  if Trace.enabled () then
    Trace.emit (Trace.Txn_abort { txn = ctx.txn; compensated = false });
  finish ctx;
  release_everything ctx

let finish_compensated ctx =
  assert (not ctx.finished);
  ignore (Log.append ctx.eng.log (Record.Abort { txn = ctx.txn }));
  if Trace.enabled () then
    Trace.emit (Trace.Txn_abort { txn = ctx.txn; compensated = true });
  finish ctx;
  release_everything ctx

(* Re-open a transaction that recovery reported as pending compensation.
   The adopted context keeps the original transaction id, and its protocol
   obligations — Begin, work area, last completed step — are re-logged on
   the (new) engine's log: if the process dies again before the compensating
   step commits, the next recovery re-derives exactly the same pending
   obligation from this engine's baseline + log. *)
let adopt_pending t ~txn ~txn_type ~completed_steps ~area =
  if completed_steps < 1 then invalid_arg "Executor.adopt_pending: nothing to compensate";
  let rec bump () =
    let cur = Atomic.get t.next_txn in
    if cur <= txn && not (Atomic.compare_and_set t.next_txn cur (txn + 1)) then bump ()
  in
  bump ();
  Atomic.incr t.active;
  ignore (Log.append t.log (Record.Begin { txn; txn_type; multi_step = true }));
  ignore (Log.append t.log (Record.Comp_area { txn; completed_steps; area }));
  ignore (Log.append t.log (Record.Step_end { txn; step_index = completed_steps }));
  if Trace.enabled () then Trace.emit (Trace.Txn_begin { txn; txn_type });
  {
    eng = t;
    txn;
    txn_type;
    multi_step = true;
    step_type = 0;
    step_index = completed_steps;
    compensating = false;
    undo_stack = [];
    on_lock = (fun _ _ -> ());
    on_before_lock = (fun _ _ -> ());
    step_t0 = 0.;
    finished = false;
    pre_acquired = [];
  }

(* Re-open an in-doubt 2PC participant.  Same contract as [adopt_pending],
   plus the Prepare record is re-logged: if the process dies again before
   the resolution completes, the next recovery re-derives the same in-doubt
   obligation (instead of misreading the branch as an ordinary pending
   compensation and wrongly undoing a committed decision). *)
let adopt_in_doubt t ~txn ~txn_type ~completed_steps ~area ~gid =
  let ctx = adopt_pending t ~txn ~txn_type ~completed_steps ~area in
  ignore (Log.append t.log (Record.Prepare { txn; gid }));
  ctx

let active_txns t = Atomic.get t.active

let checkpoint t =
  if Atomic.get t.active > 0 then
    invalid_arg
      (Printf.sprintf "Executor.checkpoint: %d transaction(s) still active" (Atomic.get t.active));
  Log.flush_all t.log;
  Acc_wal.Checkpoint.take t.db t.log
