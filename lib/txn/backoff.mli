(** Capped exponential backoff for deadlock-victim and fault-aborted step
    retries.

    Retrying code (the runtime's step loop, the flat-transaction runners)
    reports its attempt number through {!Txn_effect.Yield}; the scheduler
    handling the effect scales its own base delay by {!factor}.  Keeping the
    policy here — and the delay units in the handlers — lets one policy
    serve the simulator (virtual seconds) and the multicore engine (real
    sleeps) alike. *)

type policy = { multiplier : float; max_factor : float }
(** Delay grows as [multiplier ^ (attempt - 1)], saturating at
    [max_factor]. *)

val default : policy
(** Doubling, capped at 32× the handler's base delay. *)

val factor : ?policy:policy -> attempt:int -> unit -> float
(** Scale for the given 1-based attempt number; [1.0] for a first attempt
    (or [attempt <= 0], used by plain reschedule yields). *)
