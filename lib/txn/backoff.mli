(** Capped exponential backoff for deadlock-victim and fault-aborted step
    retries.

    Retrying code (the runtime's step loop, the flat-transaction runners)
    reports its attempt number through {!Txn_effect.Yield}; the scheduler
    handling the effect scales its own base delay by {!factor}.  Keeping the
    policy here — and the delay units in the handlers — lets one policy
    serve the simulator (virtual seconds) and the multicore engine (real
    sleeps) alike. *)

type policy = { multiplier : float; max_factor : float }
(** Delay grows as [multiplier ^ (attempt - 1)], saturating at
    [max_factor]. *)

val default : policy
(** Doubling, capped at 32× the handler's base delay. *)

val factor : ?policy:policy -> attempt:int -> unit -> float
(** Scale for the given 1-based attempt number; [1.0] for a first attempt
    (or [attempt <= 0], used by plain reschedule yields). *)

(** Decorrelated-jitter delays for real (wall-clock) retry loops.

    The deterministic {!factor} schedule synchronizes colliding deadlock
    victims: transactions aborted by the same cycle sleep identical delays
    and collide again.  A {!Jitter.t} carries randomized state — each delay
    is uniform in [[base, min cap (3 × previous)]] — so no two retriers share
    a schedule.  Unseeded instances draw from distinct streams by
    construction; pass [seed] for a reproducible schedule. *)
module Jitter : sig
  type t

  val create : ?base:float -> ?cap:float -> ?seed:int -> unit -> t
  (** [base] is the minimum delay in seconds (default 100µs), [cap] the
      saturation (default 50ms).  Raises [Invalid_argument] unless
      [0 < base <= cap]. *)

  val next : t -> attempt:int -> float
  (** The next delay in seconds.  [attempt <= 1] restarts the growth from
      [base] (a fresh retry sequence); higher attempts continue the
      decorrelated walk. *)
end
