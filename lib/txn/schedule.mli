(** Deterministic cooperative scheduler for transaction fibers.

    Runs a set of thunks (each typically executing one or more transactions
    against a shared {!Executor.t}) under a round-robin discipline, handling
    {!Txn_effect.Wait_lock} by parking the fiber until its ticket is granted.
    Deadlock is checked at every block; victims chosen by the policy are
    resumed with {!Txn_effect.Deadlock_victim} at their wait point.

    This is the scheduler used by unit/property tests and the examples; the
    benchmark simulator implements the same effect protocol on top of
    simulated time. *)

type victim_policy = Acc_lock.Lock_service.t -> requester:int -> cycle:int list -> int list
(** Given the waits-for cycle just closed by [requester], name the
    transactions whose current steps must be aborted.  The returned list must
    be a non-empty subset of [cycle]. *)

val abort_requester : victim_policy
(** Abort the step that completed the deadlock cycle (the paper's §3.4
    resolution for forward steps). *)

val abort_youngest : victim_policy
(** Abort the youngest (largest-id) transaction in the cycle.  This is the
    default: with deterministic round-robin scheduling, requester-aborts can
    livelock — two transactions re-colliding in lockstep forever — whereas
    the youngest-victim rule never kills the system-wide oldest transaction,
    which therefore always makes progress (wound-wait's argument). *)

val run :
  ?policy:victim_policy ->
  ?max_tasks:int ->
  Executor.t ->
  (unit -> unit) list ->
  unit
(** Run all fibers to completion ([policy] defaults to {!abort_youngest}).  Raises {!Txn_effect.Stuck} if fibers
    remain suspended with nothing runnable (undetected deadlock — a bug), or
    if more than [max_tasks] resumptions occur (livelock guard,
    default 1_000_000). *)
