(** The transaction executor: every data access of both systems under test
    (plain strict 2PL, and steps inside the ACC) goes through here.

    Responsibilities per operation: hierarchical lock acquisition (intention
    lock on the table, S/X on the tuple; full-table S for scans), write-ahead
    logging with physical images, application to the store, maintenance of
    the current step's undo stack, cost charging, and access tracing.

    Lock waits {!Effect.perform} {!Txn_effect.Wait_lock}; callers run under a
    scheduler that handles it ({!Schedule} or the simulator driver). *)

type t
(** An engine: database + lock manager + log + configuration. *)

type ctx
(** A live transaction. *)

val create :
  ?cost:Cost_model.t ->
  ?wal_policy:Acc_wal.Log.policy ->
  sem:Acc_lock.Mode.semantics ->
  Acc_relation.Database.t ->
  t
(** An engine on the sequential {!Acc_lock.Lock_table} (wrapped as a
    {!Acc_lock.Lock_service.t}): lock waits perform {!Txn_effect.Wait_lock}
    and wakeups flow through {!set_on_wakeup}.  [wal_policy] as in
    {!create_with}. *)

val create_with :
  ?cost:Cost_model.t ->
  ?wal_policy:Acc_wal.Log.policy ->
  service:Acc_lock.Lock_service.t ->
  Acc_relation.Database.t ->
  t
(** An engine on a caller-supplied lock manager — the parallel engine passes
    [Sharded_lock_table.service] here.  The service's [acquire]
    must block (or suspend) until the lock is held, raising
    [Txn_effect.Deadlock_victim] if victimized and [Txn_effect.Lock_timeout]
    on deadline expiry.  {!set_on_wakeup} never fires on such an engine (the
    manager wakes its own waiters).

    [wal_policy] (default {!Acc_wal.Log.Direct}) selects the log's append
    policy.  Under a {!Acc_wal.Log.Buffered} policy the executor inserts a
    {!Acc_wal.Log.sync} before every lock release that could expose this
    transaction's effects — step-boundary releases, commit, abort — and
    before the 2PC prepare vote is observable, preserving the WAL rule and
    the group-commit durability contract (DESIGN.md §17). *)

val db : t -> Acc_relation.Database.t

val lock_service : t -> Acc_lock.Lock_service.t
(** The engine's lock manager, whichever backend it is — total, unlike the
    removed [locks] accessor.  Schedulers cancel tickets and walk waits-for
    edges through this; tests count holds through it. *)

val log : t -> Acc_wal.Log.t

(* configuration hooks, installed by schedulers/drivers *)

val set_on_wakeup : t -> (Acc_lock.Lock_table.wakeup list -> unit) -> unit
(** Called with every batch of lock grants produced by a release; the
    scheduler uses it to make fibers runnable.  Default: ignore. *)

val set_charge : t -> (float -> unit) -> unit
(** Called with the work units of each engine action; the simulator maps
    them to server CPU time.  Default: ignore. *)

val set_trace : t -> (int -> [ `R | `W ] -> Acc_lock.Resource_id.t -> unit) option -> unit
(** Access trace for the serializability checker. *)

val set_clock : t -> (unit -> float) -> unit
(** Time source for per-step latency: the simulator installs virtual time,
    the parallel driver [Unix.gettimeofday].  Default: constantly [0.], so
    uninstrumented engines measure nothing and pay one call per step. *)

val set_on_step_end : t -> (step_type:int -> dur:float -> unit) -> unit
(** Called at every {!end_step} with the step's design-time type and its
    duration by {!set_clock}'s time source; the TPC-C drivers feed this into
    per-step-type latency histograms.  Default: ignore. *)

type table_wrap = { wrap : 'a. string -> (unit -> 'a) -> 'a }

val set_table_wrap : t -> table_wrap -> unit
(** Critical-section hook around every storage-engine access, keyed by table
    name.  The in-memory tables are not thread-safe structurally (hashtable
    resizes, index maintenance), so the multi-domain engine installs a
    per-table mutex here; the lock protocol already excludes row-content
    races.  Default: run the thunk directly. *)

val set_next_txn : t -> int -> unit
(** Raise the transaction-id counter to at least [base] (monotonic; a lower
    [base] is a no-op).  {!Acc_dist.Dist_driver} gives each partition engine
    a disjoint id band ({!Acc_dist.Partition.txn_base}) so every txn id in a
    distributed trace is globally unique — the span layer recovers the
    partition from the id alone. *)

val set_lock_deadline : t -> float option -> unit
(** Lock-wait budget in seconds applied to every non-compensating lock
    acquisition: each request carries the absolute deadline [clock () +
    budget] and the lock manager may answer [Txn_effect.Lock_timeout] once it
    passes.  Compensating steps never carry a deadline (§3.4).  [None]
    (default) disables timeouts. *)

val lock_deadline : t -> float option

val charge : t -> float -> unit
val cost : t -> Cost_model.t

(* transaction lifecycle *)

val begin_txn : t -> txn_type:string -> multi_step:bool -> ctx
val txn_id : ctx -> int
val txn_type : ctx -> string
val engine : ctx -> t

val set_step : ctx -> step_type:int -> step_index:int -> unit
(** Entering step [step_index] (1-based) whose design-time type is
    [step_type]; lock requests made from now on carry that step type. *)

val step_type : ctx -> int
val step_index : ctx -> int

val set_compensating : ctx -> bool -> unit
(** Mark subsequent lock requests as issued by a compensating step (they are
    never chosen as deadlock victims). *)

val compensating : ctx -> bool

val set_on_lock : ctx -> (Acc_lock.Resource_id.t -> Acc_lock.Mode.t -> unit) -> unit
(** ACC hook fired after each conventional lock acquisition, used to attach
    assertional and compensation locks to the item just locked. *)

val set_on_before_lock : ctx -> (Acc_lock.Resource_id.t -> Acc_lock.Mode.t -> unit) -> unit
(** Hook fired before each conventional lock request: the legacy runner
    acquires its isolation assertional lock here, so a fully isolated
    transaction queues on in-flight writers before taking the data lock
    (taking it after would hold the data lock across the wait and deadlock
    against the writer's next step). *)

(* data operations *)

val read : ctx -> string -> Acc_relation.Table.key -> Acc_relation.Value.t array option
val read_exn : ctx -> string -> Acc_relation.Table.key -> Acc_relation.Value.t array

val read_committed :
  ctx -> string -> Acc_relation.Table.key -> Acc_relation.Value.t array option
(** Degree-2 read: the S lock is released as soon as the value is fetched
    (TPC-C allows one transaction type to run at READ COMMITTED). *)

val scan :
  ctx -> string -> ?where:Acc_relation.Predicate.t -> unit -> Acc_relation.Value.t array list
(** Table-granularity S lock, as in the lock-escalated executions the paper's
    Ingres baseline performs for multi-tuple reads. *)

val scan_committed :
  ctx -> string -> ?where:Acc_relation.Predicate.t -> unit -> Acc_relation.Value.t array list
(** Scan at READ COMMITTED: table S lock released at operation end. *)

val scan_keys :
  ctx -> string -> ?where:Acc_relation.Predicate.t -> unit -> Acc_relation.Table.key list

val peek_keys :
  ctx -> string -> ?where:Acc_relation.Predicate.t -> unit -> Acc_relation.Table.key list
(** Index peek under an intention lock only — no row or table data locks.
    For hunt-then-lock patterns: the caller must X-lock its chosen candidate
    and be prepared for it to have vanished ({!delete}/{!update} raise
    [No_such_row]).  Sound only where phantoms are semantically harmless
    (monotone queues). *)

val scan_keys_for_update :
  ctx -> string -> ?where:Acc_relation.Predicate.t -> unit -> Acc_relation.Table.key list
(** Scan taken under an exclusive table lock: for scan-then-modify patterns
    (delivery's oldest-order hunt), where a shared scan lock would upgrade
    and two scanners would deadlock against each other every time. *)

val insert : ctx -> string -> Acc_relation.Value.t array -> unit

val update :
  ctx ->
  string ->
  Acc_relation.Table.key ->
  (Acc_relation.Value.t array -> Acc_relation.Value.t array) ->
  Acc_relation.Value.t array

val set_column :
  ctx -> string -> Acc_relation.Table.key -> string -> Acc_relation.Value.t -> unit

val delete : ctx -> string -> Acc_relation.Table.key -> unit

val acquire :
  ctx ->
  ?admission:bool ->
  Acc_lock.Mode.t ->
  Acc_lock.Resource_id.t ->
  unit
(** Raw checked lock acquisition (blocking); used by the ACC runtime for
    admission assertional locks and compensation locks. *)

val acquire_footprint :
  ctx ->
  ?admission:bool ->
  (Acc_lock.Mode.t * Acc_lock.Resource_id.t) list ->
  unit
(** Acquire a step's declared footprint as one [Lock_service.acquire_batch]:
    canonical resource order, one shard-mutex round-trip per shard on the
    sharded backend.  Charging, the before/after lock hooks and the deadline
    policy are exactly as if {!acquire} ran over the list; emits one
    [batch_acquired] trace event.  Resources the step later touches again
    are re-entrant grants, so a footprint may safely over-approximate.  On
    victimization or timeout mid-batch the members already granted remain
    held and the step's normal abort path releases them.  No-op on []. *)

val attach_lock : ctx -> Acc_lock.Mode.t -> Acc_lock.Resource_id.t -> unit
(** Raw unconditional grant (the §3.3 mid-transaction assertional locks). *)

val attach_locks : ctx -> (Acc_lock.Mode.t * Acc_lock.Resource_id.t) list -> unit
(** Attach a list of unconditional grants through
    [Lock_service.attach_batch] — caller order and multiplicity
    preserved, one shard-mutex round-trip per shard on the sharded
    backend. *)

(* step machinery (driven by the ACC runtime; flat 2PL never calls these) *)

val undo_stack_size : ctx -> int

val rollback_current_step : ctx -> unit
(** Physically undo (and log as compensation records) every write of the
    current step, newest first; clears the undo stack.  Locks are not
    released here. *)

val end_step : ctx -> comp_area:(string * Acc_relation.Value.t) list option -> unit
(** Log the end-of-step record (and work area when compensation is needed),
    charge the step overhead, and forget the undo stack — the step is now
    durable and can no longer be physically undone. *)

val release_locks : ctx -> (Acc_lock.Resource_id.t -> Acc_lock.Mode.t -> bool) -> unit
(** Release this transaction's holds matching the predicate and deliver the
    wakeups. *)

(* completion *)

val prepare : ctx -> gid:int -> unit
(** Two-phase-commit participant vote for global transaction [gid]: log the
    [Prepare] record (the branch's durable yes-vote) and emit the [prepare]
    trace event.  Call after the last step's end-of-step release, so only
    the assertional and compensation locks remain held across the in-doubt
    window; the transaction stays open until {!commit} (decision: commit) or
    a compensation run ending in {!finish_compensated} (decision: abort). *)

val commit : ctx -> unit
(** Log commit, release everything, deliver wakeups. *)

val abort_physical : ctx -> unit
(** Roll back the current step physically, log [Abort], release everything.
    Only sound when no earlier step has exposed results (flat transactions,
    or multi-step transactions still in their first step). *)

val finish_compensated : ctx -> unit
(** Log [Abort] after compensation has run, release everything. *)

val finished : ctx -> bool

(* recovery *)

val adopt_pending :
  t ->
  txn:int ->
  txn_type:string ->
  completed_steps:int ->
  area:(string * Acc_relation.Value.t) list ->
  ctx
(** Re-open a transaction that {!Acc_wal.Recovery} reported as pending
    compensation, keeping its original id ([next_txn] is bumped past it).
    The obligation — [Begin], work area, last completed step — is re-logged
    on this engine's log, so a crash during the compensation replay leaves
    the pending state re-derivable from this engine's baseline + log.  The
    caller then runs the compensating step on the returned context exactly
    as the runtime would (see {!Acc_core.Replay}).  Raises
    [Invalid_argument] if [completed_steps < 1] (nothing exposed — recovery
    already rolled such transactions back physically). *)

val adopt_in_doubt :
  t ->
  txn:int ->
  txn_type:string ->
  completed_steps:int ->
  area:(string * Acc_relation.Value.t) list ->
  gid:int ->
  ctx
(** Re-open an in-doubt participant branch ({!Acc_wal.Recovery}'s [in_doubt]
    report): {!adopt_pending} plus a re-logged [Prepare] record, so a crash
    during resolution re-derives the in-doubt state rather than mistaking
    the branch for an ordinary pending compensation.  The caller resolves it
    with {!commit} or by running the compensating step, according to the
    coordinator's decision log (see {!Acc_core.Replay.resolve_in_doubt}). *)

(* checkpoints *)

val active_txns : t -> int
(** Transactions begun but not yet committed/aborted. *)

val checkpoint : t -> Acc_wal.Checkpoint.t
(** Quiescent checkpoint: snapshot the database and the log position so
    recovery can start from here.  Raises [Invalid_argument] if any
    transaction is active. *)
