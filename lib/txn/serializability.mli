(** Conflict-serializability checking over recorded access traces.

    Install {!hook} as the engine trace; after the run, {!conflict_serializable}
    decides whether the committed transactions admit an equivalent serial
    order (acyclic conflict graph).  Used two ways in the test suite: the
    strict-2PL baseline must {e always} pass, and the ACC experiments use it
    to demonstrate schedules that are provably {e not} serializable yet
    semantically correct — the paper's central claim. *)

type t

val create : unit -> t

val hook : t -> int -> [ `R | `W ] -> Acc_lock.Resource_id.t -> unit
(** Record one access (in execution order). *)

val note_commit : t -> int -> unit
val note_abort : t -> int -> unit

val conflict_edges : t -> (int * int) list
(** Edges of the conflict graph restricted to committed transactions:
    [(a, b)] when some access of [a] precedes and conflicts with (same
    resource, at least one write) some access of [b]. *)

val conflict_serializable : t -> bool
(** Is the conflict graph acyclic? *)

val serial_order : t -> int list option
(** A topological order witnessing serializability, if one exists. *)

val access_count : t -> int
