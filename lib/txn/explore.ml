module Lock_table = Acc_lock.Lock_table
module Lock_service = Acc_lock.Lock_service

type outcome = {
  schedules : int;
  exhausted : bool;
  failure : (string * int list) option;
}

type task =
  | Start of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation
  | Kill of (unit, unit) Effect.Deep.continuation

type suspended = { s_txn : int; s_k : (unit, unit) Effect.Deep.continuation }

type state = {
  engine : Executor.t;
  policy : Schedule.victim_policy;
  mutable ready : task list; (* order = insertion; the chooser indexes it *)
  parked : (Lock_table.ticket, suspended) Hashtbl.t;
  (* choice bookkeeping: the trace to follow, then default-0 beyond it *)
  mutable remaining : int list;
  mutable choices_rev : (int * int) list; (* (chosen, degree), newest first *)
}

let enqueue st task = st.ready <- st.ready @ [ task ]

let deliver st wakeups =
  List.iter
    (fun w ->
      match Hashtbl.find_opt st.parked w.Lock_table.woken_ticket with
      | Some s ->
          Hashtbl.remove st.parked w.Lock_table.woken_ticket;
          enqueue st (Resume s.s_k)
      | None -> ())
    wakeups

let kill_waiter st txn =
  let victim_tickets =
    Hashtbl.fold
      (fun ticket s acc -> if s.s_txn = txn then (ticket, s) :: acc else acc)
      st.parked []
  in
  List.iter
    (fun (ticket, s) ->
      Hashtbl.remove st.parked ticket;
      Lock_service.cancel (Executor.lock_service st.engine) ~ticket;
      enqueue st (Kill s.s_k))
    victim_tickets

let handle_wait st ~ticket ~txn k =
  let locks = Executor.lock_service st.engine in
  if not (Lock_service.outstanding locks ~ticket) then enqueue st (Resume k)
  else begin
    match Lock_service.find_cycle locks ~from:txn with
    | None -> Hashtbl.replace st.parked ticket { s_txn = txn; s_k = k }
    | Some cycle ->
        let victims = st.policy locks ~requester:txn ~cycle in
        if List.mem txn victims then begin
          Lock_service.cancel locks ~ticket;
          enqueue st (Kill k)
        end
        else Hashtbl.replace st.parked ticket { s_txn = txn; s_k = k };
        List.iter (fun v -> if v <> txn then kill_waiter st v) victims
  end

let pick st len =
  if len <= 1 then 0
  else begin
    let c =
      match st.remaining with
      | c :: rest ->
          st.remaining <- rest;
          min c (len - 1)
      | [] -> 0
    in
    st.choices_rev <- (c, len) :: st.choices_rev;
    c
  end

let take_nth st i =
  let rec go acc i = function
    | [] -> invalid_arg "Explore.take_nth"
    | t :: rest -> if i = 0 then (t, List.rev_append acc rest) else go (t :: acc) (i - 1) rest
  in
  let task, rest = go [] i st.ready in
  st.ready <- rest;
  task

(* Execute one schedule, steered by [trace]; returns the recorded choices. *)
let run_one ~policy ~trace engine fibers =
  let st =
    {
      engine;
      policy;
      ready = [];
      parked = Hashtbl.create 32;
      remaining = trace;
      choices_rev = [];
    }
  in
  Executor.set_on_wakeup engine (deliver st);
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Txn_effect.Wait_lock { ticket; txn } ->
              Some
                (fun (k : (b, unit) Effect.Deep.continuation) -> handle_wait st ~ticket ~txn k)
          | Txn_effect.Yield _ ->
              Some (fun (k : (b, unit) Effect.Deep.continuation) -> enqueue st (Resume k))
          | _ -> None);
    }
  in
  List.iter (fun f -> enqueue st (Start f)) fibers;
  let stall_sweep () =
    let locks = Executor.lock_service engine in
    let parked_txns =
      Hashtbl.fold (fun _ s acc -> s.s_txn :: acc) st.parked [] |> List.sort_uniq compare
    in
    List.iter
      (fun txn ->
        match Lock_service.find_cycle locks ~from:txn with
        | Some cycle ->
            let victims = st.policy locks ~requester:txn ~cycle in
            List.iter (fun v -> kill_waiter st v) victims
        | None -> ())
      parked_txns
  in
  let rec drain () =
    while st.ready <> [] do
      let len = List.length st.ready in
      let task = take_nth st (pick st len) in
      match task with
      | Start f -> Effect.Deep.match_with f () handler
      | Resume k -> Effect.Deep.continue k ()
      | Kill k -> Effect.Deep.discontinue k Txn_effect.Deadlock_victim
    done;
    if Hashtbl.length st.parked > 0 then begin
      stall_sweep ();
      if st.ready <> [] then drain ()
    end
  in
  drain ();
  if Hashtbl.length st.parked > 0 then raise (Txn_effect.Stuck "explore: stranded fibers");
  List.rev st.choices_rev

(* The next trace in depth-first order: increment the last incrementable
   choice and drop everything after it; None when the tree is exhausted. *)
let bump choices_in_order =
  let rec go = function
    | [] -> None
    | (c, d) :: rest_rev ->
        if c + 1 < d then Some (List.rev_map fst (((c + 1), d) :: rest_rev)) else go rest_rev
  in
  go (List.rev choices_in_order)

let explore ?(max_schedules = 10_000) ?(policy = Schedule.abort_youngest) ~make ~check () =
  let schedules = ref 0 in
  let rec walk trace =
    if !schedules >= max_schedules then { schedules = !schedules; exhausted = false; failure = None }
    else begin
      incr schedules;
      let engine, fibers = make () in
      match
        let choices = run_one ~policy ~trace engine fibers in
        (choices, check engine)
      with
      | choices, Ok () -> begin
          match bump choices with
          | Some next -> walk next
          | None -> { schedules = !schedules; exhausted = true; failure = None }
        end
      | choices, Error msg ->
          {
            schedules = !schedules;
            exhausted = false;
            failure = Some (msg, List.map fst choices);
          }
      | exception e ->
          {
            schedules = !schedules;
            exhausted = false;
            failure = Some (Printexc.to_string e, trace);
          }
    end
  in
  walk []

let replay ?(policy = Schedule.abort_youngest) ~make trace =
  let engine, fibers = make () in
  ignore (run_one ~policy ~trace engine fibers);
  engine
