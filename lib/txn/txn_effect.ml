(* The single point where concurrency-control code suspends: lock waits are
   surfaced as an effect so that the same engine runs under the deterministic
   round-robin scheduler (tests, examples) and under the discrete-event
   simulator (benchmarks) unchanged. *)

type _ Effect.t +=
  | Wait_lock : { ticket : Acc_lock.Lock_table.ticket; txn : int } -> unit Effect.t
  | Yield : int -> unit Effect.t
        (** Voluntary reschedule point.  The payload is the retry attempt
            number that prompted the yield (0 for a plain reschedule): the
            scheduler handling the effect turns it into a delay via
            {!Backoff.factor}, so repeated victims back off exponentially
            instead of ping-ponging. *)

let yield ?(attempt = 0) () = Effect.perform (Yield attempt)

exception Lock_timeout
(** Raised {e at the wait point} of a lock request whose wait deadline
    expired before the lock was granted.  Handled exactly like
    {!Deadlock_victim} — the step is undone and the transaction retried or
    compensated — but counted separately: timeouts are an overload signal,
    not a cycle. *)

exception Deadlock_victim
(** Raised {e at the wait point} of a transaction chosen as deadlock victim:
    the scheduler discontinues the suspended fiber with this exception.  The
    step-retry logic of the caller is responsible for undoing the current
    step. *)

exception Abort_requested
(** Raised by a transaction body to request its own rollback (e.g. TPC-C's
    mandated 1% of new-order transactions, which fail on the last item).
    Flat runners answer with a physical abort; the ACC runtime rolls back the
    current step physically and compensates the completed ones. *)

exception Stuck of string
(** Raised by schedulers when no fiber is runnable but some are still
    suspended: indicates a scheduling bug or an undetected deadlock. *)
