(** The effects through which transaction code talks to its scheduler.

    Engine operations never block directly: a lock wait performs
    {!Wait_lock}, and whichever scheduler is running the fiber — the
    deterministic round-robin {!Schedule}, the systematic {!Explore}, or the
    discrete-event simulation driver — decides how to park and resume it.
    This is what lets one engine implementation serve unit tests, exhaustive
    interleaving checks, and the performance simulation unchanged. *)

type _ Effect.t +=
  | Wait_lock : { ticket : Acc_lock.Lock_table.ticket; txn : int } -> unit Effect.t
        (** Performed by {!Executor.acquire} when a lock request queues;
            resumed when the ticket is granted, or discontinued with
            {!Deadlock_victim}. *)
  | Yield : int -> unit Effect.t
        (** Voluntary reschedule point: lets tests and examples construct
            specific interleavings, and gives the explorer its branch
            points.  The payload is the retry attempt number that prompted
            the yield ([0] for a plain reschedule); timed schedulers scale
            their base delay by {!Backoff.factor} of it, so repeated
            deadlock victims and fault-aborted steps back off exponentially
            instead of ping-ponging. *)

val yield : ?attempt:int -> unit -> unit
(** [yield ()] performs [Yield 0]; [yield ~attempt ()] reports a retry. *)

exception Lock_timeout
(** Raised {e at the wait point} of a lock request whose wait deadline
    expired before the lock was granted.  Handled exactly like
    {!Deadlock_victim} — the step is undone and the transaction retried or
    compensated — but counted separately: timeouts are an overload signal,
    not a cycle. *)

exception Deadlock_victim
(** Raised {e at the wait point} of a transaction chosen as deadlock victim:
    the scheduler discontinues the suspended fiber with this exception.  The
    step-retry logic of the caller is responsible for undoing the current
    step. *)

exception Abort_requested
(** Raised by a transaction body to request its own rollback (e.g. TPC-C's
    mandated 1% of new-order transactions, which fail on the last item).
    Flat runners answer with a physical abort; the ACC runtime rolls back the
    current step physically and compensates the completed ones. *)

exception Stuck of string
(** Raised by schedulers when no fiber is runnable but some are still
    suspended: indicates a scheduling bug or an undetected deadlock. *)
