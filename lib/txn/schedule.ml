module Lock_table = Acc_lock.Lock_table
module Lock_service = Acc_lock.Lock_service

type victim_policy = Lock_service.t -> requester:int -> cycle:int list -> int list

let abort_requester _locks ~requester ~cycle:_ = [ requester ]

let abort_youngest _locks ~requester ~cycle =
  [ List.fold_left max requester cycle ]

type task =
  | Start of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation
  | Kill of (unit, unit) Effect.Deep.continuation

type suspended = { s_txn : int; s_k : (unit, unit) Effect.Deep.continuation }

type state = {
  engine : Executor.t;
  policy : victim_policy;
  ready : task Queue.t;
  parked : (Lock_table.ticket, suspended) Hashtbl.t;
  mutable tasks_run : int;
}

let deliver st wakeups =
  List.iter
    (fun w ->
      match Hashtbl.find_opt st.parked w.Lock_table.woken_ticket with
      | Some s ->
          Hashtbl.remove st.parked w.Lock_table.woken_ticket;
          Queue.add (Resume s.s_k) st.ready
      | None -> () (* granted to a request that was cancelled concurrently *))
    wakeups

(* Unpark [txn]'s waiting fiber (if any), withdraw its lock request, and
   schedule it to be resumed with Deadlock_victim. *)
let kill_waiter st txn =
  let victim_tickets =
    Hashtbl.fold (fun ticket s acc -> if s.s_txn = txn then (ticket, s) :: acc else acc)
      st.parked []
  in
  List.iter
    (fun (ticket, s) ->
      Hashtbl.remove st.parked ticket;
      (* the service delivers the cancellation's wakeups through the
         [set_on_wakeup] hook, i.e. straight back into [deliver st] *)
      Lock_service.cancel (Executor.lock_service st.engine) ~ticket;
      Queue.add (Kill s.s_k) st.ready)
    victim_tickets

let handle_wait st ~ticket ~txn k =
  let locks = Executor.lock_service st.engine in
  (* the ticket may already have been granted by lock churn between the
     request and this handler running; only park if still outstanding *)
  if not (Lock_service.outstanding locks ~ticket) then Queue.add (Resume k) st.ready
  else begin
    match Lock_service.find_cycle locks ~from:txn with
    | None -> Hashtbl.replace st.parked ticket { s_txn = txn; s_k = k }
    | Some cycle ->
        let victims = st.policy locks ~requester:txn ~cycle in
        assert (victims <> [] && List.for_all (fun v -> List.mem v cycle) victims);
        if List.mem txn victims then begin
          Lock_service.cancel locks ~ticket;
          Queue.add (Kill k) st.ready
        end
        else Hashtbl.replace st.parked ticket { s_txn = txn; s_k = k };
        List.iter (fun v -> if v <> txn then kill_waiter st v) victims
  end

let run ?(policy = abort_youngest) ?(max_tasks = 1_000_000) engine fibers =
  let st =
    { engine; policy; ready = Queue.create (); parked = Hashtbl.create 64; tasks_run = 0 }
  in
  Executor.set_on_wakeup engine (deliver st);
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Txn_effect.Wait_lock { ticket; txn } ->
              Some
                (fun (k : (b, unit) Effect.Deep.continuation) -> handle_wait st ~ticket ~txn k)
          | Txn_effect.Yield _ ->
              (* deterministic round-robin: backoff is a real-time notion, so
                 the attempt number only matters to the timed schedulers *)
              Some (fun (k : (b, unit) Effect.Deep.continuation) -> Queue.add (Resume k) st.ready)
          | _ -> None);
    }
  in
  List.iter (fun f -> Queue.add (Start f) st.ready) fibers;
  (* Grant promotions and lock upgrades can close a waits-for cycle without
     any transaction newly blocking; when the ready queue drains with fibers
     still parked, sweep the parked set for cycles before declaring a bug. *)
  let stall_sweep () =
    let locks = Executor.lock_service engine in
    let parked_txns =
      Hashtbl.fold (fun _ s acc -> s.s_txn :: acc) st.parked [] |> List.sort_uniq compare
    in
    List.iter
      (fun txn ->
        match Lock_service.find_cycle locks ~from:txn with
        | Some cycle ->
            let victims = st.policy locks ~requester:txn ~cycle in
            List.iter (fun v -> kill_waiter st v) victims
        | None -> ())
      parked_txns
  in
  let rec drain () =
    while not (Queue.is_empty st.ready) do
      st.tasks_run <- st.tasks_run + 1;
      if st.tasks_run > max_tasks then raise (Txn_effect.Stuck "livelock guard tripped");
      match Queue.pop st.ready with
      | Start f -> Effect.Deep.match_with f () handler
      | Resume k -> Effect.Deep.continue k ()
      | Kill k -> Effect.Deep.discontinue k Txn_effect.Deadlock_victim
    done;
    if Hashtbl.length st.parked > 0 then begin
      stall_sweep ();
      if not (Queue.is_empty st.ready) then drain ()
    end
  in
  drain ();
  if Hashtbl.length st.parked > 0 then begin
    let stranded =
      Hashtbl.fold (fun _ s acc -> s.s_txn :: acc) st.parked [] |> List.sort_uniq compare
    in
    raise
      (Txn_effect.Stuck
         (Format.asprintf "fibers stranded on locks: txns %a"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Format.pp_print_int)
            stranded))
  end
