module Resource_id = Acc_lock.Resource_id

type access = { a_txn : int; a_rw : [ `R | `W ]; a_res : Resource_id.t }

type t = {
  mutable accesses : access list; (* newest first *)
  committed : (int, unit) Hashtbl.t;
  aborted : (int, unit) Hashtbl.t;
}

let create () = { accesses = []; committed = Hashtbl.create 64; aborted = Hashtbl.create 16 }
let hook t txn rw res = t.accesses <- { a_txn = txn; a_rw = rw; a_res = res } :: t.accesses
let note_commit t txn = Hashtbl.replace t.committed txn ()
let note_abort t txn = Hashtbl.replace t.aborted txn ()
let access_count t = List.length t.accesses

(* Two accesses conflict when they touch overlapping resources and at least
   one writes.  A table-granularity access overlaps every tuple of that
   table. *)
let overlaps r1 r2 =
  Resource_id.equal r1 r2
  ||
  match (r1, r2) with
  | Resource_id.Table t, Resource_id.Tuple (t', _) | Resource_id.Tuple (t', _), Resource_id.Table t
    ->
      String.equal t t'
  | (Resource_id.Table _ | Resource_id.Tuple _), _ -> false

let conflict_edges t =
  let ordered = List.rev t.accesses in
  let committed txn = Hashtbl.mem t.committed txn in
  let rec walk acc earlier = function
    | [] -> acc
    | a :: rest ->
        let acc =
          if not (committed a.a_txn) then acc
          else
            List.fold_left
              (fun acc e ->
                if
                  e.a_txn <> a.a_txn
                  && committed e.a_txn
                  && overlaps e.a_res a.a_res
                  && (e.a_rw = `W || a.a_rw = `W)
                  && not (List.mem (e.a_txn, a.a_txn) acc)
                then (e.a_txn, a.a_txn) :: acc
                else acc)
              acc earlier
        in
        walk acc (a :: earlier) rest
  in
  List.sort compare (walk [] [] ordered)

let serial_order t =
  let edges = conflict_edges t in
  let nodes =
    List.sort_uniq compare
      (Hashtbl.fold (fun txn () acc -> txn :: acc) t.committed []
      @ List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  (* Kahn's algorithm *)
  let in_degree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_degree n 0) nodes;
  List.iter (fun (_, b) -> Hashtbl.replace in_degree b (Hashtbl.find in_degree b + 1)) edges;
  let rec loop order remaining =
    if remaining = [] then Some (List.rev order)
    else
      match List.find_opt (fun n -> Hashtbl.find in_degree n = 0) remaining with
      | None -> None (* cycle *)
      | Some n ->
          List.iter
            (fun (a, b) -> if a = n then Hashtbl.replace in_degree b (Hashtbl.find in_degree b - 1))
            edges;
          loop (n :: order) (List.filter (fun m -> m <> n) remaining)
  in
  loop [] nodes

let conflict_serializable t = Option.is_some (serial_order t)
