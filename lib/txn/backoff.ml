(* Capped exponential backoff for step retries.

   The runtime does not sleep itself — scheduling is owned by whichever
   driver handles the {!Txn_effect.Yield} effect (deterministic round-robin,
   discrete-event simulator, or real domains).  Retrying code passes its
   attempt number through the effect; the handler multiplies its base delay
   by [factor ~attempt], so the same policy yields simulated milliseconds
   under the simulator and real microseconds under the parallel engine. *)

type policy = { multiplier : float; max_factor : float }

let default = { multiplier = 2.0; max_factor = 32.0 }

let factor ?(policy = default) ~attempt () =
  if attempt <= 1 then 1.0
  else Float.min policy.max_factor (policy.multiplier ** float_of_int (attempt - 1))
