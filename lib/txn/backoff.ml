(* Capped exponential backoff for step retries.

   The runtime does not sleep itself — scheduling is owned by whichever
   driver handles the {!Txn_effect.Yield} effect (deterministic round-robin,
   discrete-event simulator, or real domains).  Retrying code passes its
   attempt number through the effect; the handler multiplies its base delay
   by [factor ~attempt], so the same policy yields simulated milliseconds
   under the simulator and real microseconds under the parallel engine. *)

type policy = { multiplier : float; max_factor : float }

let default = { multiplier = 2.0; max_factor = 32.0 }

let factor ?(policy = default) ~attempt () =
  if attempt <= 1 then 1.0
  else Float.min policy.max_factor (policy.multiplier ** float_of_int (attempt - 1))

(* Decorrelated jitter (the "decorrelated" variant of exponential backoff):
   each delay is uniform in [base, min cap (3 * previous delay)].  A plain
   capped-exponential schedule synchronizes colliding deadlock victims — two
   transactions aborted by the same cycle sleep the same delays and collide
   again; carrying randomized state per retrier decorrelates them.  Used by
   the parallel engine's Yield handler and the driver's shed-retry loop. *)
module Jitter = struct
  type t = {
    base : float;
    cap : float;
    g : Acc_util.Prng.t;
    mutable prev : float;
  }

  (* distinct stream per unseeded instance: the whole point is that two
     colliding retriers never share a schedule *)
  let instances = Atomic.make 0

  let create ?(base = 1e-4) ?(cap = 0.05) ?seed () =
    if base <= 0. then invalid_arg "Backoff.Jitter.create: base must be > 0";
    if cap < base then invalid_arg "Backoff.Jitter.create: cap must be >= base";
    let seed =
      match seed with
      | Some s -> s
      | None ->
          let n = Atomic.fetch_and_add instances 1 in
          (0x9e3779b9 * (n + 1)) lxor ((Domain.self () :> int) lsl 20)
    in
    { base; cap; g = Acc_util.Prng.create ~seed; prev = base }

  let next t ~attempt =
    (* a fresh retry sequence restarts the growth from the base *)
    if attempt <= 1 then t.prev <- t.base;
    let hi = Float.min t.cap (t.prev *. 3.) in
    let d =
      if hi <= t.base then t.base else t.base +. Acc_util.Prng.float t.g (hi -. t.base)
    in
    t.prev <- d;
    d
end
