(** Abstract CPU costs of engine operations, in work units.

    The simulator maps work units to simulated server-CPU seconds.  The model
    exists so that the ACC's {e extra} work — assertional-lock calls, the
    end-of-step log record, the compensation work-area save — is charged
    explicitly: the paper's low-concurrency and single-server regimes (where
    the unmodified system wins) emerge from these charges rather than being
    scripted. *)

type t = {
  point_op : float;  (** point read / update / insert / delete *)
  scan_base : float;
  scan_row : float;  (** per row examined *)
  lock_op : float;  (** each conventional lock-manager call *)
  assertional_op : float;  (** each assertional/compensation lock action *)
  step_end : float;  (** end-of-step log record + work-area save *)
  admission : float;  (** admission table lookups at transaction start *)
}

val default : t
