(** Paired baseline/ACC measurements: the machinery behind every figure.

    One {!point} is the paper's unit of reporting: both systems run the same
    workload at one parameter setting, averaged over the configured seeds,
    and the ratios (non-ACC / ACC, §5.3) are derived.  Runs are deterministic
    in the seed list, so every figure regenerates bit-identically. *)

type settings = {
  seeds : int list;  (** each point averages one run per seed *)
  horizon : float;
  warmup : float;
  think_mean : float;
  cpu_per_unit : float;
  servers : int;
  terminals : int;
  skewed : bool;
  compute_between : float;
  items_range : int * int;
      (** min/max items per new-order: the paper's second lock-duration knob
          (§5.2, "increasing the number of items in an order") *)
  params : Acc_tpcc.Params.t;
}

val default_settings : settings
(** The calibrated setup: 3 servers, think 6 s, seeds {3, 17, 29},
    horizon 400 s with 40 s warmup — the configuration whose shapes match
    the paper's figures (see EXPERIMENTS.md). *)

type side = {
  s_response : float;  (** mean response time, seed-averaged *)
  s_throughput : float;
  s_deadlocks : float;
  s_compensations : float;
  s_cpu : float;
  s_lock_wait : float;
      (** seconds spent parked on locks per completed transaction — the
          bottleneck variable behind the figures *)
  s_violations : int;  (** total across seeds; must be 0 *)
}

type point = {
  p_label : string;
  p_terminals : int;
  p_base : side;
  p_acc : side;
}

val response_ratio : point -> float
(** non-ACC mean response / ACC mean response: > 1 means the ACC is faster
    (the ordinate of Figures 2–4). *)

val throughput_ratio : point -> float
(** non-ACC completed / ACC completed (the second series of Figure 4):
    < 1 means the ACC completed more work. *)

type acc_variant =
  | One_level  (** the paper's implemented design: item-granularity locks *)
  | Two_level
      (** §3.2's earlier design, as ablation: assertional locks at table
          granularity (item identity "unknown at design time"), suffering
          the false conflicts the one-level ACC eliminates *)
  | No_commutativity
      (** interference tables built without the hand-proved commutativity
          facts (the monotone district counter): the purely syntactic
          analysis *)

val measure : ?label:string -> ?variant:acc_variant -> settings -> point
(** Run both systems at one setting; [variant] (default [One_level]) selects
    the ACC flavour under test. *)

val sweep_terminals : ?variant:acc_variant -> settings -> int list -> point list
(** {!measure} at each terminal count (a figure's abscissa). *)

val sweep_servers : ?variant:acc_variant -> settings -> int list -> point list
(** {!measure} at each server count, at the settings' terminal count. *)
