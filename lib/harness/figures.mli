(** The paper's evaluation artifacts (§5.3), regenerated.

    Each figure returns its measured series and renders the same quantity the
    paper plots: the ratio of the unmodified system's metric to the ACC's, as
    a function of the number of terminals on one warehouse with ten
    districts. *)

type series = { name : string; points : Experiment.point list }

type figure = {
  fig_id : string;  (** "fig2", "fig3", "fig4", "servers" *)
  title : string;
  paper_claim : string;  (** what the paper reports, for side-by-side reading *)
  series : series list;
}

val terminals_axis : int list
(** 5, 10, 20, 30, 40, 50, 60 — the paper's 0–60 abscissa. *)

val fig2 : ?quick:bool -> Experiment.settings -> figure
(** Figure 2, "The Effect of Hotspots": standard vs skewed district
    selection. [quick] trims the axis and seeds for smoke runs. *)

val fig3 : ?quick:bool -> Experiment.settings -> figure
(** Figure 3, "The Effect of Transaction Duration": with vs without
    inter-statement compute time. *)

val fig4 : ?quick:bool -> Experiment.settings -> figure
(** Figure 4, "Response Time and Throughput": both ratios, standard mix. *)

val servers : ?quick:bool -> Experiment.settings -> figure
(** The §5.3 fourth experiment: database-server count 1–4 at a fixed,
    contended terminal count. *)

val items : ?quick:bool -> Experiment.settings -> figure
(** Supplementary (described in §5.2 but not plotted): the second way the
    paper lengthens lock holds — more items per order — at a fixed terminal
    count. *)

val ablation : ?quick:bool -> Experiment.settings -> figure
(** Not in the paper: the design-choice ablations DESIGN.md calls out —
    the two-level ACC of §3.2 (table-granularity assertional locks) and the
    analysis without the hand-proved commutativity facts, each against the
    one-level design. *)

val render : Format.formatter -> figure -> unit
(** Human-readable table with response (and where applicable throughput)
    ratios per point, plus the paper's claim. *)

val render_csv : Format.formatter -> figure -> unit
(** The same quantities as {!render}, one CSV row per point. *)

val consistency_violations : figure -> int
(** Total consistency violations across every run of the figure (semantic
    correctness demands 0). *)
