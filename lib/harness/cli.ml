(* Shared CLI plumbing for the driver binaries (acc-tpcc-run,
   acc-tpcc-parallel, acc-crash-restart): workload selection against the
   plugin registry, trace collection, and metrics exposition — previously
   copy-pasted per binary.

   Workload selection: [--workload NAME] picks any registered
   {!Acc_workload.S} plugin; [--scale]/[--theta]/[--mix]/[--abort-rate]
   populate the {!Acc_workload.spec} it is built from.  Without
   [--workload] each binary keeps its classic TPC-C path (byte-identical
   behavior to the pre-plugin code). *)

open Cmdliner
module Trace_events = Acc_obs.Trace

(* ------------------------------------------------------------------ *)
(* Workload selection *)

let ensure_registered () =
  Acc_workload.Builtin.ensure ();
  Acc_tpcc.Tpcc_workload.register ()

let print_workloads () =
  ensure_registered ();
  List.iter
    (fun (name, doc) -> Printf.printf "%-18s %s\n" name doc)
    (Acc_workload.Registry.names ())

(* [resolve] is the one place a workload name becomes a plugin value.
   [None] means "no --workload given": callers keep their classic TPC-C
   configuration path. *)
let resolve ?(scale = 1) ?(theta = 0.) ?mix ?abort_rate name_opt =
  match name_opt with
  | None -> None
  | Some name -> (
      ensure_registered ();
      match Acc_workload.Registry.find name with
      | Some make ->
          Some (make { Acc_workload.scale; skew = theta; mix; abort_rate })
      | None ->
          failwith
            (Printf.sprintf "unknown workload %S (known: %s)" name
               (String.concat ", " (List.map fst (Acc_workload.Registry.names ())))))

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload" ] ~docv:"NAME"
        ~doc:"Run a registered workload plugin instead of classic TPC-C \
              (see --list-workloads for the menu).")

let list_workloads_arg =
  Arg.(value & flag & info [ "list-workloads" ] ~doc:"List registered workloads and exit.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"N"
        ~doc:"Workload scale factor (rows, accounts, warehouses — \
              workload-defined). Only meaningful with --workload.")

let theta_arg =
  Arg.(
    value & opt float 0.
    & info [ "theta" ] ~docv:"T"
        ~doc:"Access-skew knob in [0,1): Zipfian theta where the workload \
              supports it (hotspot defaults to 0.9), hotspot-district flag \
              for TPC-C. Only meaningful with --workload.")

let wl_mix_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mix" ] ~docv:"MIX"
        ~doc:"Transaction mix, workload-defined (e.g. smallbank: standard, \
              write-skew; tatp: standard, update-heavy).")

let wl_abort_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "abort-rate" ] ~docv:"P"
        ~doc:"Forced-abort probability for workloads that support it \
              (default is each workload's own, typically 0.02).")

(* ------------------------------------------------------------------ *)
(* Trace collection (the old bin/trace_setup.ml, now shared).

   A trace is requested either with the --trace/--trace-chrome flags (where
   a binary exposes them) or the ACC_TRACE / ACC_TRACE_CHROME environment
   variables.  Flags win over the environment.  With neither set, no sink is
   installed and every emission site in the engine stays on its no-op path. *)

module Trace = struct
  type t = { jsonl : string option; chrome : string option }

  (* version of the trace_meta stamp line; bumped with Bench_json since the
     consumers (acc-trace-check, acc-trace-profile) track both formats *)
  let meta_version = 3

  let configure ?(jsonl = None) ?(chrome = None) () =
    let pick flag env = match flag with Some _ -> flag | None -> Sys.getenv_opt env in
    let t = { jsonl = pick jsonl "ACC_TRACE"; chrome = pick chrome "ACC_TRACE_CHROME" } in
    if t.jsonl <> None || t.chrome <> None then begin
      (* ACC_TRACE_CAP sizes the per-domain ring; raise it when a long run
         must complete with dropped = 0 (the CI smoke test does) *)
      let capacity = Option.bind (Sys.getenv_opt "ACC_TRACE_CAP") int_of_string_opt in
      Trace_events.start ?capacity ()
    end;
    t

  let active t = t.jsonl <> None || t.chrome <> None

  (* [workload] stamps the JSONL trace with a leading trace_meta line so
     offline consumers know which workload's step ids they are decoding *)
  let finish ?workload t =
    if active t then begin
      let dump = Trace_events.stop () in
      let write path f =
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc dump)
      in
      Option.iter
        (fun p ->
          write p (fun oc dump ->
              (match workload with
              | Some w ->
                  Printf.fprintf oc
                    {|{"ev":"trace_meta","schema_version":%d,"workload":"%s"}|}
                    meta_version w;
                  output_char oc '\n'
              | None -> ());
              Trace_events.write_jsonl oc dump))
        t.jsonl;
      Option.iter (fun p -> write p Trace_events.write_chrome) t.chrome;
      Format.printf "trace: %d events captured, %d dropped%s%s@."
        (List.length dump.Trace_events.events)
        dump.Trace_events.dropped
        (match t.jsonl with Some p -> ", jsonl -> " ^ p | None -> "")
        (match t.chrome with Some p -> ", chrome -> " ^ p | None -> "")
    end

  let jsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL event trace to FILE (also: ACC_TRACE env var).")

  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-chrome" ] ~docv:"FILE"
          ~doc:"Write a chrome://tracing JSON trace to FILE (also: \
                ACC_TRACE_CHROME env var).")
end

(* ------------------------------------------------------------------ *)
(* Metrics exposition *)

let metrics_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-dump" ] ~docv:"FILE"
        ~doc:"Write the metric registry as Prometheus text format to FILE \
              after the runs.")

(* Live mode (the parallel driver): refresh the exposition on the watchdog's
   snapshot cadence while the run is live; the returned closure uninstalls
   the hook and writes the final values. *)
let metrics_live = function
  | None -> fun () -> ()
  | Some path ->
      Acc_parallel.Watchdog.set_snapshot_hook
        (Some (0.25, fun () -> Acc_obs.Prom.dump_file path));
      fun () ->
        Acc_parallel.Watchdog.set_snapshot_hook None;
        Acc_obs.Prom.dump_file path;
        Format.printf "wrote %s@." path

(* One-shot mode (sim driver, crash harness): dump once, now. *)
let metrics_final = function
  | None -> ()
  | Some path ->
      Acc_obs.Prom.dump_file path;
      Format.printf "wrote %s@." path
