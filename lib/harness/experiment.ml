module Driver = Acc_tpcc.Driver
module Params = Acc_tpcc.Params

type settings = {
  seeds : int list;
  horizon : float;
  warmup : float;
  think_mean : float;
  cpu_per_unit : float;
  servers : int;
  terminals : int;
  skewed : bool;
  compute_between : float;
  items_range : int * int;
  params : Params.t;
}

let default_settings =
  {
    seeds = [ 3; 17; 29 ];
    horizon = 400.0;
    warmup = 40.0;
    think_mean = 6.0;
    cpu_per_unit = 0.005;
    servers = 3;
    terminals = 10;
    skewed = false;
    compute_between = 0.0;
    items_range = (5, 15);
    params = Params.default;
  }

type side = {
  s_response : float;
  s_throughput : float;
  s_deadlocks : float;
  s_compensations : float;
  s_cpu : float;
  s_lock_wait : float; (* total parked seconds per completed transaction *)
  s_violations : int;
}

type point = { p_label : string; p_terminals : int; p_base : side; p_acc : side }

let response_ratio p = p.p_base.s_response /. p.p_acc.s_response
let throughput_ratio p = p.p_base.s_throughput /. p.p_acc.s_throughput

type acc_variant = One_level | Two_level | No_commutativity

(* interference tables built WITHOUT the compatible (commutativity) pairs *)
let no_commutativity_semantics =
  lazy
    (Acc_core.Interference.semantics (Acc_core.Interference.build Acc_tpcc.Txns.workload))

let apply_variant variant cfg =
  match variant with
  | One_level -> cfg
  | Two_level ->
      {
        cfg with
        Driver.acc_options =
          {
            Acc_core.Runtime.default_options with
            Acc_core.Runtime.assertion_granularity = Acc_core.Runtime.Table;
          };
      }
  | No_commutativity ->
      { cfg with Driver.acc_semantics = Some (Lazy.force no_commutativity_semantics) }

let config_of settings system seed =
  {
    Driver.default_config with
    Driver.seed;
    system;
    terminals = settings.terminals;
    servers = settings.servers;
    horizon = settings.horizon;
    warmup = settings.warmup;
    think_mean = settings.think_mean;
    compute_between = settings.compute_between;
    cpu_per_unit = settings.cpu_per_unit;
    skewed_district = settings.skewed;
    min_items = fst settings.items_range;
    max_items = snd settings.items_range;
    params = settings.params;
  }

let run_side ?(variant = One_level) settings system =
  let n = float_of_int (List.length settings.seeds) in
  let reports =
    List.map
      (fun seed -> Driver.run (apply_variant variant (config_of settings system seed)))
      settings.seeds
  in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0. reports /. n in
  {
    s_response = avg Driver.mean_response;
    s_throughput = avg (fun r -> r.Driver.throughput);
    s_deadlocks = avg (fun r -> float_of_int r.Driver.deadlock_victims);
    s_compensations = avg (fun r -> float_of_int r.Driver.compensations);
    s_cpu = avg (fun r -> r.Driver.cpu_utilization);
    s_lock_wait =
      avg (fun r ->
          if r.Driver.completed = 0 then 0.
          else Acc_util.Stats.Tally.total r.Driver.lock_wait /. float_of_int r.Driver.completed);
    s_violations =
      List.fold_left (fun acc r -> acc + List.length r.Driver.violations) 0 reports;
  }

let measure ?label ?(variant = One_level) settings =
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "T=%d srv=%d%s%s" settings.terminals settings.servers
          (if settings.skewed then " skew" else "")
          (if settings.compute_between > 0. then
             Printf.sprintf " comp=%.0fms" (1000. *. settings.compute_between)
           else "")
        ^ (if settings.items_range <> (5, 15) then
             Printf.sprintf " items=%d-%d" (fst settings.items_range) (snd settings.items_range)
           else "")
  in
  {
    p_label = label;
    p_terminals = settings.terminals;
    p_base = run_side settings Driver.Baseline;
    p_acc = run_side ~variant settings Driver.Acc;
  }

let sweep_terminals ?variant settings terminal_counts =
  List.map (fun terminals -> measure ?variant { settings with terminals }) terminal_counts

let sweep_servers ?variant settings server_counts =
  List.map (fun servers -> measure ?variant { settings with servers }) server_counts
