type series = { name : string; points : Experiment.point list }

type figure = {
  fig_id : string;
  title : string;
  paper_claim : string;
  series : series list;
}

let terminals_axis = [ 5; 10; 20; 30; 40; 50; 60 ]
let quick_axis = [ 10; 40 ]

let trim ~quick settings =
  if quick then
    {
      settings with
      Experiment.seeds = [ List.hd settings.Experiment.seeds ];
      horizon = 150.0;
      warmup = 20.0;
    }
  else settings

let axis ~quick = if quick then quick_axis else terminals_axis

let fig2 ?(quick = false) settings =
  let settings = trim ~quick settings in
  let std =
    Experiment.sweep_terminals { settings with Experiment.skewed = false } (axis ~quick)
  in
  let skew =
    Experiment.sweep_terminals { settings with Experiment.skewed = true } (axis ~quick)
  in
  {
    fig_id = "fig2";
    title = "Figure 2: The Effect of Hotspots (response-time ratio non-ACC/ACC)";
    paper_claim =
      "crossover ~20 terminals; at 60 terminals the unmodified system is >40% slower \
       (ratio ~1.4), and ~60% slower under a skewed district distribution (~1.6)";
    series = [ { name = "standard"; points = std }; { name = "skewed"; points = skew } ];
  }

let fig3 ?(quick = false) settings =
  let settings = trim ~quick settings in
  let without =
    Experiment.sweep_terminals { settings with Experiment.compute_between = 0.0 } (axis ~quick)
  in
  let with_compute =
    Experiment.sweep_terminals { settings with Experiment.compute_between = 0.004 } (axis ~quick)
  in
  {
    fig_id = "fig3";
    title = "Figure 3: The Effect of Transaction Duration (response-time ratio)";
    paper_claim =
      "adding several ms of compute time between successive SQL statements raises the \
       ratio to ~1.8 at 60 terminals; the no-compute curve matches Figure 2's standard curve";
    series =
      [
        { name = "w/o compute time"; points = without };
        { name = "with compute time"; points = with_compute };
      ];
  }

let fig4 ?(quick = false) settings =
  let settings = trim ~quick settings in
  let std =
    Experiment.sweep_terminals { settings with Experiment.skewed = false } (axis ~quick)
  in
  {
    fig_id = "fig4";
    title = "Figure 4: Response Time and Throughput (both ratios, standard mix)";
    paper_claim =
      "the response-time ratio rises above 1 with terminals while the throughput ratio \
       (completed non-ACC / completed ACC) falls below 1: the ACC both responds faster \
       and completes more";
    series = [ { name = "standard"; points = std } ];
  }

let servers ?(quick = false) settings =
  let settings = trim ~quick settings in
  let settings = { settings with Experiment.terminals = 40 } in
  let pts = Experiment.sweep_servers settings (if quick then [ 1; 3 ] else [ 1; 2; 3; 4 ]) in
  {
    fig_id = "servers";
    title = "Fourth experiment (Sec 5.3): database-server count at 40 terminals";
    paper_claim =
      "with a single server the server is the bottleneck and the ACC performs slightly \
       worse; with multiple servers lock contention dominates and the ACC wins";
    series = [ { name = "servers 1-4"; points = pts } ];
  }

let items ?(quick = false) settings =
  let settings = trim ~quick settings in
  let settings = { settings with Experiment.terminals = 40 } in
  (* (15,25) drives the flat baseline into a deadlock-retry storm (half-hour
     runs of mostly-wasted work) — itself a finding, reported in
     EXPERIMENTS.md, but too heavy for the default sweep *)
  let ranges = if quick then [ (5, 15); (10, 20) ] else [ (3, 7); (5, 15); (10, 20) ] in
  let pts =
    List.map
      (fun items_range -> Experiment.measure { settings with Experiment.items_range })
      ranges
  in
  {
    fig_id = "items";
    title = "Supplementary (Sec 5.2): items per order at 40 terminals";
    paper_claim =
      "lock duration was varied two ways: compute time between statements (Figure 3) and        the number of items in an order; longer new-orders hold their locks longer,        growing the ACC's advantage";
    series = [ { name = "items/order sweep"; points = pts } ];
  }

let ablation ?(quick = false) settings =
  let settings = trim ~quick settings in
  let ax = if quick then [ 25 ] else [ 10; 25; 40 ] in
  let sweep variant = Experiment.sweep_terminals ~variant settings ax in
  {
    fig_id = "ablation";
    title = "Ablations: one-level vs two-level ACC; with vs without commutativity facts";
    paper_claim =
      "Sec 3.2 argues the one-level design eliminates the two-level design's false \
       conflicts via run-time item identity. In the TPC-C mix those false conflicts \
       mostly hit delivery and admission-style assertions, so the aggregate response \
       effect is mixed: table-granularity locking saves per-tuple lock calls and can \
       even look faster at saturation, while its deadlock/compensation counts explode \
       (wasted work). The crisp demonstration of the one-level advantage is \
       behavioural: the 'two-level ablation: false conflict' test. Dropping the \
       hand-proved commutativity facts costs little at these parameters: the counter \
       assertion's window is two steps.";
    series =
      [
        { name = "one-level (paper)"; points = sweep Experiment.One_level };
        { name = "two-level (table locks)"; points = sweep Experiment.Two_level };
        { name = "no commutativity facts"; points = sweep Experiment.No_commutativity };
      ];
  }

let x_label fig (p : Experiment.point) =
  if fig.fig_id = "servers" || fig.fig_id = "items" then p.Experiment.p_label
  else string_of_int p.Experiment.p_terminals

let render ppf fig =
  Format.fprintf ppf "@.=== %s ===@." fig.title;
  Format.fprintf ppf "paper: %s@." fig.paper_claim;
  List.iter
    (fun s ->
      Format.fprintf ppf "@.  series: %s@." s.name;
      Format.fprintf ppf "  %-14s %10s %10s %10s %10s %10s %10s %8s %8s@." "x" "base-resp"
        "acc-resp" "resp-ratio" "tput-ratio" "base-wait" "acc-wait" "acc-dl" "acc-comp";
      List.iter
        (fun p ->
          Format.fprintf ppf "  %-14s %10.4f %10.4f %10.3f %10.3f %10.4f %10.4f %8.1f %8.1f@."
            (x_label fig p) p.Experiment.p_base.Experiment.s_response
            p.Experiment.p_acc.Experiment.s_response
            (Experiment.response_ratio p) (Experiment.throughput_ratio p)
            p.Experiment.p_base.Experiment.s_lock_wait p.Experiment.p_acc.Experiment.s_lock_wait
            p.Experiment.p_acc.Experiment.s_deadlocks
            p.Experiment.p_acc.Experiment.s_compensations)
        s.points)
    fig.series

let render_csv ppf fig =
  Format.fprintf ppf "figure,series,x,base_response,acc_response,response_ratio,throughput_ratio@.";
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          Format.fprintf ppf "%s,%s,%s,%.6f,%.6f,%.6f,%.6f@." fig.fig_id s.name (x_label fig p)
            p.Experiment.p_base.Experiment.s_response p.Experiment.p_acc.Experiment.s_response
            (Experiment.response_ratio p) (Experiment.throughput_ratio p))
        s.points)
    fig.series

let consistency_violations fig =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc p ->
          acc + p.Experiment.p_base.Experiment.s_violations
          + p.Experiment.p_acc.Experiment.s_violations)
        acc s.points)
    0 fig.series
