(* The stock-trading example of Sec 3.1 of the paper, driven from the
   promoted workload plugin ({!Acc_workload.Stock_trading}).

   Two concurrent [buy] transactions each want n shares.  There are exactly
   n shares at $30 and more at $31.  Under serializability one buyer would
   get all the cheap shares; under the ACC the buys are decomposed into
   per-lot steps and may interleave, so both buyers end up with half their
   shares at $30 and half at $31.

   Each transaction still satisfies its specification — "when each share was
   bought, no cheaper unbought shares existed in the database" — so the
   schedule is semantically correct, yet the final ledger could not have
   been produced by any serial execution.  The serializability checker
   proves the point mechanically.

   Run with:  dune exec examples/stock_trading.exe *)

module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Serializability = Acc_txn.Serializability
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime
module ST = Acc_workload.Stock_trading

let n_shares = 10

let () =
  (* n shares at $30 (two lots), plenty at $31 *)
  let db =
    ST.make_db [ (1, 30, n_shares / 2); (2, 30, n_shares / 2); (3, 31, 100) ]
  in
  let eng = Executor.create ~sem:(Interference.semantics ST.interference) db in
  let checker = Serializability.create () in
  Executor.set_trace eng (Some (Serializability.hook checker));
  let i1, log1 = ST.buy ~buyer:1 ~want:n_shares ~steps:2 () in
  let i2, log2 = ST.buy ~buyer:2 ~want:n_shares ~steps:2 () in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        ignore (Runtime.run eng i1);
        Serializability.note_commit checker 1);
      (fun () ->
        ignore (Runtime.run eng i2);
        Serializability.note_commit checker 2);
    ];
  let pp_log name log =
    Format.printf "%s bought: %s@." name
      (String.concat ", "
         (List.rev_map (fun (price, shares) -> Printf.sprintf "%d @ $%d" shares price) !log))
  in
  pp_log "buyer 1" log1;
  pp_log "buyer 2" log2;
  (* both postconditions hold: every purchase took the cheapest lot available
     at its instant, and each buyer has all its shares *)
  let total log = List.fold_left (fun acc (_, s) -> acc + s) 0 !log in
  assert (total log1 = n_shares && total log2 = n_shares);
  Format.printf "@.each buyer paid two prices - impossible in any serial execution:@.";
  Format.printf "conflict-serializable? %b@." (Serializability.conflict_serializable checker);
  assert (not (Serializability.conflict_serializable checker));
  Format.printf "semantically correct:   true (every purchase took the cheapest available lot)@."
