(* The stock-trading example of Sec 3.1 of the paper.

   Two concurrent [buy] transactions each want n shares.  There are exactly
   n shares at $30 and more at $31.  Under serializability one buyer would
   get all the cheap shares; under the ACC the buys are decomposed into
   per-lot steps and may interleave, so both buyers end up with half their
   shares at $30 and half at $31.

   Each transaction still satisfies its specification — "when each share was
   bought, no cheaper unbought shares existed in the database" — so the
   schedule is semantically correct, yet the final ledger could not have
   been produced by any serial execution.  The serializability checker
   proves the point mechanically.

   Run with:  dune exec examples/stock_trading.exe *)

module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Serializability = Acc_txn.Serializability
module Txn_effect = Acc_txn.Txn_effect
module Program = Acc_core.Program
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime

let v_int n = Value.Int n

(* sell orders: lots of shares offered at a price *)
let sell_orders =
  Schema.make ~name:"sell_orders" ~key:[ "lot_id" ]
    [
      Schema.col "lot_id" Value.Tint;
      Schema.col "price" Value.Tint;
      Schema.col "shares" Value.Tint;
    ]

(* the buyers' ledger: one row per purchase *)
let ledger =
  Schema.make ~name:"ledger" ~key:[ "buyer"; "entry" ]
    [
      Schema.col "buyer" Value.Tint;
      Schema.col "entry" Value.Tint;
      Schema.col "price" Value.Tint;
      Schema.col "shares" Value.Tint;
    ]

let n_shares = 10

let make_db () =
  let db = Database.create () in
  let sells = Database.create_table db sell_orders in
  (* n shares at $30 (two lots), plenty at $31 *)
  Table.insert sells [| v_int 1; v_int 30; v_int (n_shares / 2) |];
  Table.insert sells [| v_int 2; v_int 30; v_int (n_shares / 2) |];
  Table.insert sells [| v_int 3; v_int 31; v_int 100 |];
  let _ = Database.create_table db ledger in
  db

(* --- design-time description: buy is one repeating per-lot step ---------- *)

let step_buy_lot =
  Program.step ~id:1 ~name:"buy-lot" ~txn_type:"buy" ~index:1 ~repeats:true
    ~reads:[ Footprint.make "sell_orders" (Footprint.Columns [ "price"; "shares" ]) ]
    ~writes:
      [
        Footprint.make "sell_orders" (Footprint.Columns [ "shares" ]);
        Footprint.make ~fresh:Footprint.Fresh "ledger" Footprint.All_columns;
      ]
    ()

let step_buy_comp =
  Program.step ~id:2 ~name:"return-shares" ~txn_type:"buy" ~index:0 ~reads:[]
    ~writes:
      [
        Footprint.make "sell_orders" (Footprint.Columns [ "shares" ]);
        Footprint.make ~fresh:Footprint.Fresh "ledger" Footprint.All_columns;
      ]
    ()

(* The key of the analysis: one buyer's per-lot step does NOT interfere with
   another buyer's postcondition-in-progress, because "no cheaper unbought
   shares existed when I bought" is evaluated at each purchase instant — the
   proof needs no interstep assertion over the shared lots at all.  Hence no
   declared assertions, and arbitrary interleaving of buy steps. *)
let buy_type =
  Program.txn_type ~name:"buy" ~steps:[ step_buy_lot ] ~comp:step_buy_comp ~assertions:[] ()

let workload = Program.workload [ buy_type ]
let interference = Interference.build workload

(* --- run-time: buy [want] shares, one lot per step ------------------------ *)

type buy_log = { mutable bought : (int * int) list (* price, shares *) }

let cheapest_lot ctx =
  let lots = Executor.scan ctx "sell_orders" ~where:(Predicate.Cmp (Predicate.Gt, "shares", v_int 0)) () in
  match
    List.sort
      (fun a b -> compare (Value.as_int a.(1)) (Value.as_int b.(1)))
      lots
  with
  | [] -> None
  | best :: _ -> Some (Value.as_int best.(0), Value.as_int best.(1), Value.as_int best.(2))

let buy ~buyer ~want =
  let log = { bought = [] } in
  let remaining = ref want in
  let entry = ref 0 in
  let buy_step ctx =
    (* purchase from the cheapest available lot; each step is one lot *)
    Txn_effect.yield ();
    match cheapest_lot ctx with
    | None -> failwith "market ran dry"
    | Some (lot, price, avail) ->
        let take = min !remaining avail in
        ignore
          (Executor.update ctx "sell_orders" [ v_int lot ] (fun row ->
               row.(2) <- v_int (avail - take);
               row));
        incr entry;
        Executor.insert ctx "ledger" [| v_int buyer; v_int !entry; v_int price; v_int take |];
        remaining := !remaining - take;
        log.bought <- (price, take) :: log.bought
  in
  (* two lots always suffice for [want = n/2 + n/2] in this scenario *)
  let inst =
    Program.instance ~def:buy_type
      ~steps:[ (step_buy_lot, buy_step); (step_buy_lot, buy_step) ]
      ~compensate:(fun ctx ~completed:_ ->
        List.iter
          (fun key ->
            let row = Executor.read_exn ctx "ledger" key in
            let price = Value.as_int row.(2) and shares = Value.as_int row.(3) in
            let lot = if price = 30 then 1 else 3 in
            ignore
              (Executor.update ctx "sell_orders" [ v_int lot ] (fun r ->
                   r.(2) <- v_int (Value.as_int r.(2) + shares);
                   r));
            Executor.delete ctx "ledger" key)
          (List.init !entry (fun i -> [ v_int buyer; v_int (i + 1) ])))
      ()
  in
  (inst, log)

let () =
  let eng = Executor.create ~sem:(Interference.semantics interference) (make_db ()) in
  let checker = Serializability.create () in
  Executor.set_trace eng (Some (Serializability.hook checker));
  let i1, log1 = buy ~buyer:1 ~want:n_shares in
  let i2, log2 = buy ~buyer:2 ~want:n_shares in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        ignore (Runtime.run eng i1);
        Serializability.note_commit checker 1);
      (fun () ->
        ignore (Runtime.run eng i2);
        Serializability.note_commit checker 2);
    ];
  let pp_log name log =
    Format.printf "%s bought: %s@." name
      (String.concat ", "
         (List.rev_map (fun (price, shares) -> Printf.sprintf "%d @ $%d" shares price) log.bought))
  in
  pp_log "buyer 1" log1;
  pp_log "buyer 2" log2;
  (* both postconditions hold: every purchase took the cheapest lot available
     at its instant, and each buyer has all its shares *)
  let total log = List.fold_left (fun acc (_, s) -> acc + s) 0 log.bought in
  assert (total log1 = n_shares && total log2 = n_shares);
  Format.printf "@.each buyer paid two prices - impossible in any serial execution:@.";
  Format.printf "conflict-serializable? %b@." (Serializability.conflict_serializable checker);
  assert (not (Serializability.conflict_serializable checker));
  Format.printf "semantically correct:   true (every purchase took the cheapest available lot)@."
