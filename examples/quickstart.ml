(* Quickstart: decompose a transaction into steps and run it under the
   assertional concurrency control.

   The scenario: an account ledger where a [settle] transaction moves money
   in two steps — debit one account, credit another — releasing its locks at
   the step boundary so other transactions can slip in between.  A
   compensating step makes the decomposition safe: if the transaction cannot
   finish after its debit became visible, the ACC runs the compensation
   instead of leaving the books broken.

   Run with:  dune exec examples/quickstart.exe *)

module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Txn_effect = Acc_txn.Txn_effect
module Program = Acc_core.Program
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime

let v_int n = Value.Int n

(* --- 1. a schema and some data ------------------------------------------ *)

let accounts =
  Schema.make ~name:"accounts" ~key:[ "id" ]
    [ Schema.col "id" Value.Tint; Schema.col "balance" Value.Tint ]

let make_db () =
  let db = Database.create () in
  let t = Database.create_table db accounts in
  List.iter (fun (id, bal) -> Table.insert t [| v_int id; v_int bal |]) [ (1, 100); (2, 100); (3, 100) ];
  db

(* --- 2. the design-time description -------------------------------------- *)

(* Each step declares a symbolic footprint; the analysis derives the
   interference tables from these, never from the code. *)
let step_debit =
  Program.step ~id:1 ~name:"debit" ~txn_type:"settle" ~index:1 ~reads:[]
    ~writes:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ]
    ()

let step_credit =
  Program.step ~id:2 ~name:"credit" ~txn_type:"settle" ~index:2 ~reads:[]
    ~writes:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ]
    ()

let step_undo =
  Program.step ~id:3 ~name:"undo-debit" ~txn_type:"settle" ~index:0 ~reads:[]
    ~writes:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ]
    ()

let settle_type =
  Program.txn_type ~name:"settle" ~steps:[ step_debit; step_credit ] ~comp:step_undo
    ~assertions:[] ()

let workload = Program.workload [ settle_type ]
let interference = Interference.build workload

(* --- 3. run-time instances ------------------------------------------------ *)

let add ctx id delta =
  ignore
    (Executor.update ctx "accounts" [ v_int id ] (fun row ->
         row.(1) <- v_int (Value.as_int row.(1) + delta);
         row))

let settle ~from_acct ~to_acct ~amount =
  Program.instance ~def:settle_type
    ~steps:
      [
        (step_debit, fun ctx -> add ctx from_acct (-amount));
        (step_credit, fun ctx -> add ctx to_acct amount);
      ]
    ~compensate:(fun ctx ~completed -> if completed >= 1 then add ctx from_acct amount)
    ()

(* --- 4. run --------------------------------------------------------------- *)

let balance eng id =
  Value.as_int (Table.get_exn (Database.table (Executor.db eng) "accounts") [ v_int id ]).(1)

let () =
  let eng = Executor.create ~sem:(Interference.semantics interference) (make_db ()) in
  let outcomes = ref [] in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        outcomes := ("1->2", Runtime.run eng (settle ~from_acct:1 ~to_acct:2 ~amount:30)) :: !outcomes);
      (fun () ->
        outcomes := ("2->3", Runtime.run eng (settle ~from_acct:2 ~to_acct:3 ~amount:50)) :: !outcomes);
      (fun () ->
        (* this one is forced to fail after its debit step: the ACC answers
           with the compensating step *)
        outcomes :=
          ("3->1 (aborted)", Runtime.run ~abort_at:1 eng (settle ~from_acct:3 ~to_acct:1 ~amount:10))
          :: !outcomes);
    ];
  List.iter
    (fun (name, outcome) ->
      Format.printf "settle %-16s %s@." name
        (match outcome with
        | Runtime.Committed -> "committed"
        | Runtime.Compensated { completed_steps } ->
            Printf.sprintf "compensated after %d step(s)" completed_steps))
    (List.rev !outcomes);
  Format.printf "balances: 1=%d 2=%d 3=%d (total %d, expected 300)@." (balance eng 1)
    (balance eng 2) (balance eng 3)
    (balance eng 1 + balance eng 2 + balance eng 3);
  assert (balance eng 1 + balance eng 2 + balance eng 3 = 300);
  Format.printf "@.The design-time analysis behind the scheduling decisions:@.%a@."
    Interference.pp interference
