(* Exhaustive verification of a decomposition.

   The paper establishes semantic correctness by proof outline; this tool
   complements the proof by brute force: for a concrete workload instance it
   executes EVERY schedule the cooperative scheduler can produce and checks
   the consistency constraint after each one.  It also shows the explorer
   catching a deliberately broken decomposition — one whose compensating
   step forgets to return stock.

   Run with:  dune exec examples/verify_interleavings.exe *)

module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Executor = Acc_txn.Executor
module Explore = Acc_txn.Explore
module Txn_effect = Acc_txn.Txn_effect
module Program = Acc_core.Program
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime

let v_int n = Value.Int n

let stock_schema =
  Schema.make ~name:"stock" ~key:[ "item" ]
    [ Schema.col "item" Value.Tint; Schema.col "level" Value.Tint ]

let initial_level = 10

let make_db () =
  let db = Database.create () in
  let t = Database.create_table db stock_schema in
  Table.insert t [| v_int 1; v_int initial_level |];
  Table.insert t [| v_int 2; v_int initial_level |];
  db

(* a two-step "reserve two items" transaction *)
let s1 =
  Program.step ~id:1 ~name:"take-first" ~txn_type:"reserve" ~index:1 ~reads:[]
    ~writes:[ Footprint.make "stock" (Footprint.Columns [ "level" ]) ] ()

let s2 =
  Program.step ~id:2 ~name:"take-second" ~txn_type:"reserve" ~index:2 ~reads:[]
    ~writes:[ Footprint.make "stock" (Footprint.Columns [ "level" ]) ] ()

let comp =
  Program.step ~id:3 ~name:"return" ~txn_type:"reserve" ~index:0 ~reads:[]
    ~writes:[ Footprint.make "stock" (Footprint.Columns [ "level" ]) ] ()

let reserve_type = Program.txn_type ~name:"reserve" ~steps:[ s1; s2 ] ~comp ~assertions:[] ()
let interference = Interference.build (Program.workload [ reserve_type ])

let take ctx item =
  ignore
    (Executor.update ctx "stock" [ v_int item ] (fun row ->
         row.(1) <- v_int (Value.as_int row.(1) - 1);
         row))

let give_back ctx item =
  ignore
    (Executor.update ctx "stock" [ v_int item ] (fun row ->
         row.(1) <- v_int (Value.as_int row.(1) + 1);
         row))

let reserve ~first ~second ~comp_returns_stock =
  Program.instance ~def:reserve_type
    ~steps:
      [
        (s1, fun ctx -> take ctx first);
        ( s2,
          fun ctx ->
            Txn_effect.yield ();
            take ctx second );
      ]
    ~compensate:(fun ctx ~completed ->
      if comp_returns_stock && completed >= 1 then give_back ctx first)
    ()

(* the invariant: total stock + successful reservations is conserved *)
let check committed eng =
  let db = Executor.db eng in
  let level item = Value.as_int (Table.get_exn (Database.table db "stock") [ v_int item ]).(1) in
  let total = level 1 + level 2 in
  let expected = (2 * initial_level) - (2 * !committed) in
  if total = expected then Ok ()
  else Error (Printf.sprintf "stock leak: total %d, expected %d" total expected)

let verify ~comp_returns_stock =
  let committed = ref 0 in
  let make () =
    committed := 0;
    let eng = Executor.create ~sem:(Interference.semantics interference) (make_db ()) in
    let fiber ~abort () =
      let inst = reserve ~first:1 ~second:2 ~comp_returns_stock in
      match Runtime.run ?abort_at:(if abort then Some 1 else None) eng inst with
      | Runtime.Committed -> incr committed
      | Runtime.Compensated _ -> ()
    in
    (eng, [ fiber ~abort:false; fiber ~abort:true ])
  in
  Explore.explore ~max_schedules:50_000 ~make ~check:(fun eng -> check committed eng) ()

let () =
  let good = verify ~comp_returns_stock:true in
  Format.printf "correct decomposition:  %d schedules explored, %s@." good.Explore.schedules
    (match good.Explore.failure with
    | None -> "all consistent"
    | Some (msg, _) -> "FAILED: " ^ msg);
  assert (good.Explore.exhausted && good.Explore.failure = None);

  let bad = verify ~comp_returns_stock:false in
  (match bad.Explore.failure with
  | Some (msg, trace) ->
      Format.printf
        "broken compensation:    caught after %d schedules (%s)@.  reproducing trace: [%s]@."
        bad.Explore.schedules msg
        (String.concat "; " (List.map string_of_int trace))
  | None -> assert false);
  Format.printf
    "@.The explorer executes every schedule; a compensation bug cannot hide in an unlucky \
     interleaving.@."
