(* The order-processing example of Sec 4 of the paper.

   Tables: orders, stock, prices, orderlines, and an order-number counter.
   Two transaction types:

   - [new_order]: decomposed into a header step (draw an order number,
     insert the order) and one step per requested item (take stock, insert
     the orderline).  Its loop invariant — the per-order conjunct I1 of the
     database constraint, "the number of orderlines of my order matches my
     progress" — is protected by assertional locks.
   - [bill]: a single analyzed step whose precondition IS that conjunct:
     I1 for the order it is billing.  Its admission assertional lock makes
     the ACC delay it while the same order's new_order is still in flight —
     and only then: bills of other orders pass straight through.

   The demo shows all three behaviours: arbitrary interleaving of
   new_orders, bill blocked on an in-flight order, and the compensating
   step cancelling an order while returning its stock.

   Run with:  dune exec examples/order_processing.exe *)

module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Txn_effect = Acc_txn.Txn_effect
module Resource_id = Acc_lock.Resource_id
module Assertion = Acc_core.Assertion
module Program = Acc_core.Program
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime

let v_int n = Value.Int n

(* --- schema ---------------------------------------------------------------- *)

let make_db stock_levels =
  let db = Database.create () in
  let counter =
    Database.create_table db
      (Schema.make ~name:"counter" ~key:[ "id" ]
         [ Schema.col "id" Value.Tint; Schema.col "next" Value.Tint ])
  in
  Table.insert counter [| v_int 0; v_int 1 |];
  let _orders =
    Database.create_table db
      (Schema.make ~name:"orders" ~key:[ "order_id" ]
         [
           Schema.col "order_id" Value.Tint;
           Schema.col "num_items" Value.Tint;
           Schema.col "total" Value.Tint;
         ])
  in
  let orderlines =
    Database.create_table db
      (Schema.make ~name:"orderlines" ~key:[ "order_id"; "item_id" ]
         [
           Schema.col "order_id" Value.Tint;
           Schema.col "item_id" Value.Tint;
           Schema.col "ordered" Value.Tint;
           Schema.col "filled" Value.Tint;
         ])
  in
  Table.add_index orderlines ~name:"by_order" [ "order_id" ];
  let stock =
    Database.create_table db
      (Schema.make ~name:"stock" ~key:[ "item_id" ]
         [ Schema.col "item_id" Value.Tint; Schema.col "s_level" Value.Tint ])
  in
  let prices =
    Database.create_table db
      (Schema.make ~name:"prices" ~key:[ "item_id" ]
         [ Schema.col "item_id" Value.Tint; Schema.col "price" Value.Tint ])
  in
  List.iter
    (fun (item, level, price) ->
      Table.insert stock [| v_int item; v_int level |];
      Table.insert prices [| v_int item; v_int price |])
    stock_levels;
  db

(* --- design-time: steps, assertions, interference -------------------------- *)

let fresh = Footprint.Fresh

let step_header =
  Program.step ~id:10 ~name:"header" ~txn_type:"new_order" ~index:1
    ~reads:[ Footprint.make "counter" (Footprint.Columns [ "next" ]) ]
    ~writes:
      [
        Footprint.make "counter" (Footprint.Columns [ "next" ]);
        Footprint.make ~fresh "orders" Footprint.All_columns;
      ]
    ()

let step_line =
  Program.step ~id:11 ~name:"line" ~txn_type:"new_order" ~index:2 ~repeats:true
    ~reads:[ Footprint.make "stock" (Footprint.Columns [ "s_level" ]) ]
    ~writes:
      [
        Footprint.make "stock" (Footprint.Columns [ "s_level" ]);
        Footprint.make ~fresh "orderlines" Footprint.All_columns;
      ]
    ()

let step_cancel =
  Program.step ~id:12 ~name:"cancel" ~txn_type:"new_order" ~index:0
    ~reads:[ Footprint.make ~fresh "orderlines" Footprint.All_columns ]
    ~writes:
      [
        Footprint.make "stock" (Footprint.Columns [ "s_level" ]);
        Footprint.make ~fresh "orders" Footprint.All_columns;
        Footprint.make ~fresh "orderlines" Footprint.All_columns;
      ]
    ()

(* I1 restricted to this instance's own order *)
let a_loop_inv =
  Assertion.make ~id:100 ~name:"I1_mine" ~txn_type:"new_order" ~pre_of:2
    ~until:Assertion.until_commit
    ~refs:
      [
        Footprint.make ~fresh "orders" (Footprint.Columns [ "num_items" ]);
        Footprint.make ~fresh "orderlines" Footprint.All_columns;
      ]

let step_bill =
  Program.step ~id:13 ~name:"total" ~txn_type:"bill" ~index:1
    ~reads:
      [
        Footprint.make "orders" Footprint.All_columns;
        Footprint.make "orderlines" Footprint.All_columns;
        Footprint.make "prices" (Footprint.Columns [ "price" ]);
      ]
    ~writes:[ Footprint.make "orders" (Footprint.Columns [ "total" ]) ]
    ()

(* bill's precondition: I1 for the order it bills (Shared: may be anyone's) *)
let a_bill_i1 =
  Assertion.make ~id:101 ~name:"I1_billed" ~txn_type:"bill" ~pre_of:1 ~until:1
    ~refs:
      [
        Footprint.make "orders" (Footprint.Columns [ "num_items" ]);
        Footprint.make "orderlines" Footprint.All_columns;
      ]

let new_order_type =
  Program.txn_type ~name:"new_order" ~steps:[ step_header; step_line ] ~comp:step_cancel
    ~assertions:[ a_loop_inv ] ()

let bill_type = Program.txn_type ~name:"bill" ~steps:[ step_bill ] ~assertions:[ a_bill_i1 ] ()
let workload = Program.workload [ new_order_type; bill_type ]
let interference = Interference.build workload

(* --- run-time instances ------------------------------------------------------ *)

let new_order ~items =
  let order_id = ref (-1) in
  let header ctx =
    let row =
      Executor.update ctx "counter" [ v_int 0 ] (fun row ->
          row.(1) <- v_int (Value.as_int row.(1) + 1);
          row)
    in
    order_id := Value.as_int row.(1) - 1;
    Executor.insert ctx "orders" [| v_int !order_id; v_int (List.length items); v_int (-1) |]
  in
  let line (item, qty) ctx =
    Txn_effect.yield ();
    (* a visible interleaving point between order lines *)
    let level = Value.as_int (Executor.read_exn ctx "stock" [ v_int item ]).(1) in
    let filled = min qty level in
    Executor.set_column ctx "stock" [ v_int item ] "s_level" (v_int (level - filled));
    Executor.insert ctx "orderlines" [| v_int !order_id; v_int item; v_int qty; v_int filled |]
  in
  let compensate ctx ~completed =
    if completed >= 1 then begin
      List.iteri
        (fun idx (item, _) ->
          if idx < completed - 1 then begin
            let row = Executor.read_exn ctx "orderlines" [ v_int !order_id; v_int item ] in
            let filled = Value.as_int row.(3) in
            let level = Value.as_int (Executor.read_exn ctx "stock" [ v_int item ]).(1) in
            Executor.set_column ctx "stock" [ v_int item ] "s_level" (v_int (level + filled));
            Executor.delete ctx "orderlines" [ v_int !order_id; v_int item ]
          end)
        items;
      Executor.delete ctx "orders" [ v_int !order_id ]
    end
  in
  let inst =
    Program.instance ~def:new_order_type
      ~steps:((step_header, header) :: List.map (fun it -> (step_line, line it)) items)
      ~assertions:
        [
          {
            Program.ai_assertion = a_loop_inv;
            ai_from = 2;
            ai_until = 1 + List.length items;
            ai_check = None;
          };
        ]
      ~compensate
      ~comp_area:(fun () -> [ ("order_id", v_int !order_id) ])
      ()
  in
  (inst, order_id)

let bill ~order =
  let total = ref (-1) in
  let body ctx =
    let n = Value.as_int (Executor.read_exn ctx "orders" [ v_int order ]).(1) in
    let lines = Executor.scan ctx "orderlines" ~where:(Predicate.Eq ("order_id", v_int order)) () in
    assert (List.length lines = n);
    (* I1 delivered what the admission lock promised *)
    total :=
      List.fold_left
        (fun acc row ->
          acc
          + Value.as_int row.(3)
            * Value.as_int (Executor.read_exn ctx "prices" [ v_int (Value.as_int row.(1)) ]).(1))
        0 lines;
    Executor.set_column ctx "orders" [ v_int order ] "total" (v_int !total)
  in
  let admission =
    { Program.ai_assertion = a_bill_i1; ai_from = 1; ai_until = 1; ai_check = None }
  in
  let inst =
    Program.instance ~def:bill_type
      ~steps:[ (step_bill, body) ]
      ~assertions:[ admission ]
      ~admission:[ (admission, [ Resource_id.Tuple ("orders", [ v_int order ]) ]) ]
      ()
  in
  (inst, total)

(* --- the demo ----------------------------------------------------------------- *)

let () =
  let stock_levels = [ (1, 15, 10); (2, 15, 20) ] in
  let eng = Executor.create ~sem:(Interference.semantics interference) (make_db stock_levels) in
  Format.printf "design-time analysis:@.%a@.@." Interference.pp interference;

  (* 1. two new_orders interleave arbitrarily (the TV/VCR scenario) *)
  let i1, o1 = new_order ~items:[ (1, 10); (2, 10) ] in
  let i2, _o2 = new_order ~items:[ (2, 10); (1, 10) ] in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> ignore (Runtime.run eng i1)); (fun () -> ignore (Runtime.run eng i2)) ];
  let show_order o =
    let db = Executor.db eng in
    let lines =
      Table.scan ~where:(Predicate.Eq ("order_id", v_int o)) (Database.table db "orderlines")
    in
    Format.printf "  order %d: %s@." o
      (String.concat ", "
         (List.map
            (fun row ->
              Printf.sprintf "item %d filled %d/%d" (Value.as_int row.(1)) (Value.as_int row.(3))
                (Value.as_int row.(2)))
            lines))
  in
  Format.printf "crosswise partial fills (non-serializable, semantically correct):@.";
  show_order 1;
  show_order 2;

  (* restock between demo phases (outside any transaction) *)
  let stock_table = Database.table (Executor.db eng) "stock" in
  ignore (Table.set_column stock_table [ v_int 1 ] "s_level" (v_int 30));
  ignore (Table.set_column stock_table [ v_int 2 ] "s_level" (v_int 30));

  (* 2. bill waits for an in-flight new_order on the same order, not others *)
  let i3, o3 = new_order ~items:[ (1, 3) ] in
  let billed_during_flight = ref None in
  let committed = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        ignore (Runtime.run eng i3);
        committed := true);
      (fun () ->
        (* the new_order above is parked mid-line; bill its order *)
        let b, total = bill ~order:!o3 in
        ignore (Runtime.run eng b);
        billed_during_flight := Some !committed;
        Format.printf "@.bill of order %d: total $%d (admitted only after commit: %b)@." !o3
          !total !committed);
      (fun () ->
        let b, total = bill ~order:!o1 in
        ignore (Runtime.run eng b);
        Format.printf "bill of order %d: total $%d (other orders pass straight through)@." !o1
          !total);
    ];
  assert (!billed_during_flight = Some true);

  (* 3. compensation: a forced failure after the first line step *)
  let i4, o4 = new_order ~items:[ (1, 5); (2, 5) ] in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> ignore (Runtime.run ~abort_at:2 eng i4)) ];
  let db = Executor.db eng in
  Format.printf "@.compensated order %d: present in orders = %b, stock restored = %d/%d@." !o4
    (Table.mem (Database.table db "orders") [ v_int !o4 ])
    (Value.as_int (Table.get_exn (Database.table db "stock") [ v_int 1 ]).(1))
    (Value.as_int (Table.get_exn (Database.table db "stock") [ v_int 2 ]).(1));

  (* the database constraint holds at quiescence *)
  Table.iter
    (fun _ row ->
      let o = Value.as_int row.(0) and n = Value.as_int row.(1) in
      let actual =
        Table.scan_count ~where:(Predicate.Eq ("order_id", v_int o))
          (Database.table db "orderlines")
      in
      assert (n = actual))
    (Database.table db "orders");
  Format.printf "I1 holds for every order at quiescence.@."
