(* The order-processing walkthrough of the paper's §4, driven from the
   promoted workload plugin ({!Acc_workload.Order_processing}): the schema,
   step/assertion decomposition, and transaction instances all live in the
   library now; this example is the narrated demo.

   - two new_orders interleave their line steps crosswise (the TV/VCR
     scenario): not serializable, semantically correct;
   - a bill of an in-flight order parks on its admission assertional lock
     until that order commits, while bills of other orders pass through;
   - a forced failure compensates: stock returns, the order row vanishes;
   - the database constraint I1 holds at quiescence. *)

module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Runtime = Acc_core.Runtime
module Interference = Acc_core.Interference
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Predicate = Acc_relation.Predicate
module Value = Acc_relation.Value
module OP = Acc_workload.Order_processing

let v_int n = Value.Int n

let () =
  let stock_levels = [ (1, 15, 10); (2, 15, 20) ] in
  let eng =
    Executor.create ~sem:(Interference.semantics OP.interference) (OP.make_db stock_levels)
  in
  Format.printf "design-time analysis:@.%a@.@." Interference.pp OP.interference;

  (* 1. two new_orders interleave arbitrarily (the TV/VCR scenario) *)
  let i1, o1 = OP.new_order ~items:[ (1, 10); (2, 10) ] () in
  let i2, _o2 = OP.new_order ~items:[ (2, 10); (1, 10) ] () in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> ignore (Runtime.run eng i1)); (fun () -> ignore (Runtime.run eng i2)) ];
  let show_order o =
    let db = Executor.db eng in
    let lines =
      Table.scan ~where:(Predicate.Eq ("order_id", v_int o)) (Database.table db "orderlines")
    in
    Format.printf "  order %d: %s@." o
      (String.concat ", "
         (List.map
            (fun row ->
              Printf.sprintf "item %d filled %d/%d" (Value.as_int row.(1)) (Value.as_int row.(3))
                (Value.as_int row.(2)))
            lines))
  in
  Format.printf "crosswise partial fills (non-serializable, semantically correct):@.";
  show_order 1;
  show_order 2;

  (* restock between demo phases (outside any transaction) *)
  let stock_table = Database.table (Executor.db eng) "stock" in
  ignore (Table.set_column stock_table [ v_int 1 ] "s_level" (v_int 30));
  ignore (Table.set_column stock_table [ v_int 2 ] "s_level" (v_int 30));

  (* 2. bill waits for an in-flight new_order on the same order, not others *)
  let i3, o3 = OP.new_order ~items:[ (1, 3) ] () in
  let billed_during_flight = ref None in
  let committed = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        ignore (Runtime.run eng i3);
        committed := true);
      (fun () ->
        (* the new_order above is parked mid-line; bill its order *)
        let b, total = OP.bill ~order:!o3 in
        ignore (Runtime.run eng b);
        billed_during_flight := Some !committed;
        Format.printf "@.bill of order %d: total $%d (admitted only after commit: %b)@." !o3
          !total !committed);
      (fun () ->
        let b, total = OP.bill ~order:!o1 in
        ignore (Runtime.run eng b);
        Format.printf "bill of order %d: total $%d (other orders pass straight through)@." !o1
          !total);
    ];
  assert (!billed_during_flight = Some true);

  (* 3. compensation: a forced failure after the first line step *)
  let i4, o4 = OP.new_order ~items:[ (1, 5); (2, 5) ] () in
  Schedule.run ~policy:Runtime.victim_policy eng
    [ (fun () -> ignore (Runtime.run ~abort_at:2 eng i4)) ];
  let db = Executor.db eng in
  Format.printf "@.compensated order %d: present in orders = %b, stock restored = %d/%d@." !o4
    (Table.mem (Database.table db "orders") [ v_int !o4 ])
    (Value.as_int (Table.get_exn (Database.table db "stock") [ v_int 1 ]).(1))
    (Value.as_int (Table.get_exn (Database.table db "stock") [ v_int 2 ]).(1));

  (* the database constraint holds at quiescence (I1 only: this demo's
     hand-built stock levels and mid-demo restock put it outside the
     benchmark checker's stock-conservation baseline) *)
  Table.iter
    (fun _ row ->
      let o = Value.as_int row.(0) and n = Value.as_int row.(1) in
      let actual =
        Table.scan_count ~where:(Predicate.Eq ("order_id", v_int o))
          (Database.table db "orderlines")
      in
      assert (n = actual))
    (Database.table db "orders");
  Format.printf "I1 holds for every order at quiescence.@."
