(* Crash recovery for decomposed transactions (Sec 3.4 of the paper).

   A multi-step transaction exposes its intermediate results at every step
   boundary, so a crash cannot simply restore before-images: completed steps
   must be undone *logically* by the compensating step, while the
   interrupted step is undone physically (steps are atomic).

   This demo runs TPC-C new-orders against the engine, then "crashes" at
   every prefix of the write-ahead log, recovers each time, applies the
   pending compensations that recovery reports, and checks the twelve-part
   TPC-C consistency constraint on the result.

   Run with:  dune exec examples/recovery_demo.exe *)

module Database = Acc_relation.Database
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Runtime = Acc_core.Runtime
module Log = Acc_wal.Log
module Recovery = Acc_wal.Recovery
open Acc_tpcc

let () =
  let params = Params.default in
  let db = Load.populate ~seed:42 params in
  let baseline = Database.copy db in
  let eng = Executor.create ~sem:Txns.semantics db in
  let env = Txns.default_env ~seed:7 params in

  (* run a handful of new-orders (one of them aborts on its last item) *)
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        for _ = 1 to 5 do
          let input = Txns.New_order { (Txns.gen_new_order env) with Txns.no_fail_last = false } in
          ignore (Txns.run_acc eng env input)
        done;
        let failing = { (Txns.gen_new_order env) with Txns.no_fail_last = true } in
        ignore (Txns.run_acc eng env (Txns.New_order failing)));
    ];
  let log = Executor.log eng in
  Format.printf "history: %d log records from 6 new-orders (one self-aborting)@." (Log.length log);

  (* crash at every prefix; recover; finish pending compensations; check *)
  let worst_pending = ref 0 in
  for cut = 0 to Log.length log do
    let r = Recovery.recover ~baseline (Log.prefix log cut) in
    Acc_tpcc.Recovery_comp.complete_all r.Recovery.db r;
    worst_pending := max !worst_pending (List.length r.Recovery.pending);
    match Consistency.check r.Recovery.db with
    | [] -> ()
    | problems ->
        Format.printf "crash at %d: INCONSISTENT:@." cut;
        List.iter print_endline problems;
        exit 1
  done;
  Format.printf
    "crashed at all %d prefixes: consistent after recovery every time (up to %d pending \
     compensations per crash)@."
    (Log.length log + 1) !worst_pending
