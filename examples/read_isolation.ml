(* Read-isolation restrictions for decomposed transactions.

   Section 3.3 of the paper notes that exposing intermediate results is not
   always acceptable: "some transactions might require that they read only
   committed data ... or that the values [they read] all correspond to the
   same snapshot", citing the companion report [11] which augments interstep
   assertions to restrict such interleavings.  This library implements three
   levels per transaction instance:

   - [Exposed]        the paper's default: steps read whatever other
                      transactions exposed at their step boundaries;
   - [Committed_only] reads wait out compensation locks, so a value can no
                      longer be compensated away once read;
   - [Snapshot]       additionally, read locks are held to commit: every
                      read of the transaction belongs to one snapshot.

   The demo runs the same two-step auditor against a two-step transfer under
   each level and prints what it observed.

   Run with:  dune exec examples/read_isolation.exe *)

module Value = Acc_relation.Value
module Schema = Acc_relation.Schema
module Table = Acc_relation.Table
module Database = Acc_relation.Database
module Executor = Acc_txn.Executor
module Schedule = Acc_txn.Schedule
module Txn_effect = Acc_txn.Txn_effect
module Program = Acc_core.Program
module Footprint = Acc_core.Footprint
module Interference = Acc_core.Interference
module Runtime = Acc_core.Runtime

let v_int n = Value.Int n

let accounts =
  Schema.make ~name:"accounts" ~key:[ "id" ]
    [ Schema.col "id" Value.Tint; Schema.col "balance" Value.Tint ]

let make_db () =
  let db = Database.create () in
  let t = Database.create_table db accounts in
  Table.insert t [| v_int 1; v_int 100 |];
  Table.insert t [| v_int 2; v_int 100 |];
  db

(* transfer: debit in step 1, credit in step 2 — the intermediate state
   (money in flight) is exposed at the boundary *)
let t_debit =
  Program.step ~id:1 ~name:"debit" ~txn_type:"transfer" ~index:1 ~reads:[]
    ~writes:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ] ()

let t_credit =
  Program.step ~id:2 ~name:"credit" ~txn_type:"transfer" ~index:2 ~reads:[]
    ~writes:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ] ()

let t_undo =
  Program.step ~id:3 ~name:"undo" ~txn_type:"transfer" ~index:0 ~reads:[]
    ~writes:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ] ()

let transfer_type =
  Program.txn_type ~name:"transfer" ~steps:[ t_debit; t_credit ] ~comp:t_undo ~assertions:[] ()

(* auditor: reads both balances, one per step *)
let a_one =
  Program.step ~id:4 ~name:"read1" ~txn_type:"auditor" ~index:1
    ~reads:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ]
    ~writes:[] ()

let a_two =
  Program.step ~id:5 ~name:"read2" ~txn_type:"auditor" ~index:2
    ~reads:[ Footprint.make "accounts" (Footprint.Columns [ "balance" ]) ]
    ~writes:[] ()

let a_undo =
  Program.step ~id:6 ~name:"noop" ~txn_type:"auditor" ~index:0 ~reads:[] ~writes:[] ()

let auditor_type =
  Program.txn_type ~name:"auditor" ~steps:[ a_one; a_two ] ~comp:a_undo ~assertions:[] ()

let workload = Program.workload [ transfer_type; auditor_type ]
let interference = Interference.build workload

let add ctx id delta =
  ignore
    (Executor.update ctx "accounts" [ v_int id ] (fun row ->
         row.(1) <- v_int (Value.as_int row.(1) + delta);
         row))

let balance_of ctx id = Value.as_int (Executor.read_exn ctx "accounts" [ v_int id ]).(1)

let transfer ~amount =
  Program.instance ~def:transfer_type
    ~steps:
      [
        (t_debit, fun ctx -> add ctx 1 (-amount));
        ( t_credit,
          fun ctx ->
            (* park between the steps: the debit is exposed, its lock gone *)
            Txn_effect.yield ();
            Txn_effect.yield ();
            add ctx 2 amount );
      ]
    ~compensate:(fun ctx ~completed -> if completed >= 1 then add ctx 1 amount)
    ()

let audit ~level =
  let seen = ref (0, 0) in
  let inst =
    Program.instance ~def:auditor_type
      ~steps:
        [
          (a_one, fun ctx -> seen := (balance_of ctx 1, snd !seen));
          (a_two, fun ctx -> seen := (fst !seen, balance_of ctx 2));
        ]
      ~compensate:(fun _ ~completed:_ -> ())
      ~read_isolation:level ()
  in
  (inst, seen)

let run_level name level =
  let eng = Executor.create ~sem:(Interference.semantics interference) (make_db ()) in
  let inst, seen = audit ~level in
  let audit_done_before_transfer = ref None in
  let transfer_committed = ref false in
  Schedule.run ~policy:Runtime.victim_policy eng
    [
      (fun () ->
        ignore (Runtime.run eng (transfer ~amount:30));
        transfer_committed := true);
      (fun () ->
        ignore (Runtime.run eng inst);
        audit_done_before_transfer := Some (not !transfer_committed));
    ];
  let a, b = !seen in
  Format.printf "%-15s observed %3d + %3d = %3d%s@." name a b (a + b)
    (if a + b = 200 then "  (consistent total)"
     else "  (in-flight money visible!)")

let () =
  Format.printf "one transfer of $30 in flight; an auditor sums both accounts:@.@.";
  run_level "Exposed" Program.Exposed;
  run_level "Committed_only" Program.Committed_only;
  run_level "Snapshot" Program.Snapshot;
  Format.printf
    "@.Exposed may catch the in-flight state; Committed_only and Snapshot wait it out.@."
