(* CLI for regenerating the paper's evaluation artifacts.

     acc-experiments --figure 2            # Figure 2 (hotspots)
     acc-experiments --figure 3 --csv      # Figure 3 as CSV
     acc-experiments --servers             # the Sec 5.3 server-count sweep
     acc-experiments --show-tables         # the design-time interference tables
     acc-experiments --figure 2 --quick    # trimmed axis/seeds for smoke runs *)

open Cmdliner
module Experiment = Acc_harness.Experiment
module Figures = Acc_harness.Figures

let run_figure ~quick ~csv ~seeds id =
  let settings =
    match seeds with
    | [] -> Experiment.default_settings
    | seeds -> { Experiment.default_settings with Experiment.seeds }
  in
  let fig =
    match id with
    | `Fig2 -> Figures.fig2 ~quick settings
    | `Fig3 -> Figures.fig3 ~quick settings
    | `Fig4 -> Figures.fig4 ~quick settings
    | `Servers -> Figures.servers ~quick settings
    | `Ablation -> Figures.ablation ~quick settings
  in
  if csv then Figures.render_csv Format.std_formatter fig
  else Figures.render Format.std_formatter fig;
  match Figures.consistency_violations fig with
  | 0 -> `Ok ()
  | n -> `Error (false, Printf.sprintf "%d consistency violations detected" n)

let show_tables () =
  Format.printf "TPC-C decomposition: %d forward step types@.@.%a@."
    Acc_tpcc.Txns.forward_step_count Acc_core.Interference.pp Acc_tpcc.Txns.interference;
  `Ok ()

let main figure servers ablation tables quick csv seeds =
  match (figure, servers, ablation, tables) with
  | Some n, false, false, false -> begin
      match n with
      | 2 -> run_figure ~quick ~csv ~seeds `Fig2
      | 3 -> run_figure ~quick ~csv ~seeds `Fig3
      | 4 -> run_figure ~quick ~csv ~seeds `Fig4
      | _ -> `Error (true, "figure must be 2, 3 or 4")
    end
  | None, true, false, false -> run_figure ~quick ~csv ~seeds `Servers
  | None, false, true, false -> run_figure ~quick ~csv ~seeds `Ablation
  | None, false, false, true -> show_tables ()
  | None, false, false, false ->
      `Error (true, "pick one of --figure N, --servers, --ablation, --show-tables")
  | _ -> `Error (true, "options --figure, --servers, --ablation and --show-tables are exclusive")

let figure =
  Arg.(value & opt (some int) None & info [ "figure"; "f" ] ~docv:"N" ~doc:"Regenerate paper figure $(docv) (2, 3 or 4).")

let servers =
  Arg.(value & flag & info [ "servers" ] ~doc:"Run the Sec 5.3 server-count experiment.")

let ablation =
  Arg.(value & flag & info [ "ablation" ] ~doc:"Run the two-level/no-commutativity ablations.")

let tables =
  Arg.(value & flag & info [ "show-tables" ] ~doc:"Print the design-time interference tables for the TPC-C decomposition.")

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Trimmed axis and a single seed (fast smoke run).")

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")

let seeds =
  Arg.(value & opt (list int) [] & info [ "seeds" ] ~docv:"S1,S2,.." ~doc:"Override the seed list (default 3,17,29).")

let cmd =
  let doc = "regenerate the evaluation of 'Design and Performance of an Assertional Concurrency Control System' (ICDE 1998)" in
  Cmd.v
    (Cmd.info "acc-experiments" ~doc)
    Term.(ret (const main $ figure $ servers $ ablation $ tables $ quick $ csv $ seeds))

let () = exit (Cmd.eval cmd)
