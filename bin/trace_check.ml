(* Validate a JSONL trace produced by ACC_TRACE / --trace.

     acc-trace-check out.jsonl --require lock_grant --require-past-2pl

   Checks, in order: every line parses as a JSON object with a known "ev"
   name; the file ends with exactly one trace_summary line whose event count
   matches the lines seen; no events were dropped (unless --allow-drops);
   every --require'd event name appears; and with --require-past-2pl at
   least one lock_grant carries past2pl > 0 (the "ACC passed where 2PL would
   have blocked" signal).  Prints the per-event census; exit 1 on the first
   violated check, so CI can gate on it. *)

open Cmdliner
module Json = Acc_obs.Json
module Trace = Acc_obs.Trace

let fail fmt = Format.kasprintf (fun s -> prerr_endline ("trace-check: " ^ s); exit 1) fmt

let known = "trace_summary" :: Trace.all_event_names

let main file requires forbids require_past allow_drops =
  let ic = try open_in file with Sys_error e -> fail "%s" e in
  let counts = Hashtbl.create 32 in
  let bump ev =
    Hashtbl.replace counts ev (1 + Option.value ~default:0 (Hashtbl.find_opt counts ev))
  in
  let summary = ref None in
  let events = ref 0 in
  let past_2pl = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         if !summary <> None then fail "line %d: data after trace_summary" !lineno;
         match Json.of_string line with
         | Error e -> fail "line %d: %s" !lineno e
         | Ok j -> (
             match Option.bind (Json.member "ev" j) Json.to_str with
             | None -> fail "line %d: no \"ev\" field" !lineno
             | Some ev ->
                 if not (List.mem ev known) then
                   fail "line %d: unknown event %S" !lineno ev;
                 bump ev;
                 if ev = "trace_summary" then summary := Some (j, !lineno)
                 else begin
                   incr events;
                   if
                     ev = "lock_grant"
                     && Option.bind (Json.member "past2pl" j) Json.to_int
                        |> Option.value ~default:0 > 0
                   then incr past_2pl
                 end)
       end
     done
   with End_of_file -> close_in ic);
  let sj =
    match !summary with
    | None -> fail "no trace_summary line (truncated trace?)"
    | Some (j, _) -> j
  in
  let field name =
    match Option.bind (Json.member name sj) Json.to_int with
    | Some n -> n
    | None -> fail "trace_summary: missing %s" name
  in
  if field "events" <> !events then
    fail "trace_summary says %d events, file has %d" (field "events") !events;
  let dropped = field "dropped" in
  if dropped > 0 && not allow_drops then
    fail "%d events dropped (ring too small for this run?)" dropped;
  List.iter
    (fun ev ->
      if not (List.mem ev known) then fail "--require %s: not an event name" ev;
      if not (Hashtbl.mem counts ev) then fail "required event %s never occurred" ev)
    requires;
  List.iter
    (fun ev ->
      if not (List.mem ev known) then fail "--forbid %s: not an event name" ev;
      match Hashtbl.find_opt counts ev with
      | Some n -> fail "forbidden event %s occurred %d time(s)" ev n
      | None -> ())
    forbids;
  if require_past && !past_2pl = 0 then
    fail "no lock_grant with past2pl > 0 (expected ACC to pass where 2PL blocks)";
  Format.printf "%s: OK, %d events (%d dropped)@." file !events dropped;
  List.iter
    (fun ev ->
      match Hashtbl.find_opt counts ev with
      | Some n when ev <> "trace_summary" -> Format.printf "  %-18s %8d@." ev n
      | _ -> ())
    known;
  if !past_2pl > 0 then Format.printf "  %-18s %8d@." "(past-2PL grants)" !past_2pl

let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.jsonl")

let requires =
  Arg.(
    value & opt_all string []
    & info [ "require" ] ~docv:"EV" ~doc:"Fail unless event $(docv) occurs (repeatable).")

let forbids =
  Arg.(
    value & opt_all string []
    & info [ "forbid" ] ~docv:"EV"
        ~doc:"Fail if event $(docv) occurs (repeatable) — e.g. $(b,degraded) in a \
              healthy-load run.")

let require_past =
  Arg.(
    value & flag
    & info [ "require-past-2pl" ]
        ~doc:"Fail unless some lock_grant has past2pl > 0.")

let allow_drops =
  Arg.(value & flag & info [ "allow-drops" ] ~doc:"Tolerate dropped > 0.")

let cmd =
  let doc = "validate a JSONL trace emitted by the ACC binaries" in
  Cmd.v
    (Cmd.info "acc-trace-check" ~doc)
    Term.(const main $ file $ requires $ forbids $ require_past $ allow_drops)

let () = exit (Cmd.eval cmd)
