(* Validate a JSONL trace produced by ACC_TRACE / --trace.

     acc-trace-check out.jsonl --require lock_grant --require-past-2pl

   Checks, in order: every line parses as a JSON object with a known "ev"
   name; the file ends with exactly one trace_summary line whose event count
   matches the lines seen; no events were dropped (unless --allow-drops);
   every --require'd event name appears; and with --require-past-2pl at
   least one lock_grant carries past2pl > 0 (the "ACC passed where 2PL would
   have blocked" signal).  Prints the per-event census; exit 1 on the first
   violated check, so CI can gate on it. *)

open Cmdliner
module Json = Acc_obs.Json
module Trace = Acc_obs.Trace
module Span = Acc_obs.Span

let fail fmt = Format.kasprintf (fun s -> prerr_endline ("trace-check: " ^ s); exit 1) fmt

(* trace_meta is the optional leading stamp the CLI writes (schema version +
   workload name); it describes the file rather than the run, so it joins the
   census but never the event count the trace_summary is checked against *)
let known = "trace_summary" :: "trace_meta" :: Trace.all_event_names

(* Per-gid 2PC protocol-order state for --check-2pc.  The file is
   timestamp-ordered, so "before" is line order. *)
type gid_state = {
  mutable prepares : int list;  (* distinct preparing txns, in order seen *)
  mutable decided : bool option;  (* Some commit once a decide line passed *)
}

let main file requires forbids require_past allow_drops check_2pc check_spans =
  let ic = try open_in file with Sys_error e -> fail "%s" e in
  let counts = Hashtbl.create 32 in
  let bump ev =
    Hashtbl.replace counts ev (1 + Option.value ~default:0 (Hashtbl.find_opt counts ev))
  in
  let summary = ref None in
  let events = ref 0 in
  let past_2pl = ref 0 in
  let lineno = ref 0 in
  let gids : (int, gid_state) Hashtbl.t = Hashtbl.create 64 in
  let gid_state gid =
    match Hashtbl.find_opt gids gid with
    | Some s -> s
    | None ->
        let s = { prepares = []; decided = None } in
        Hashtbl.replace gids gid s;
        s
  in
  let span_builder = if check_spans then Some (Span.Builder.create ()) else None in
  let int_field j name = Option.bind (Json.member name j) Json.to_int in
  let bool_field j name =
    match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None
  in
  let check_2pc_line j ev =
    let gid_of () =
      match int_field j "gid" with
      | Some g -> g
      | None -> fail "line %d: %s without a gid field" !lineno ev
    in
    match ev with
    | "prepare" ->
        let gid = gid_of () in
        let s = gid_state gid in
        if s.decided <> None then
          fail "line %d: prepare for gid %d after its decision" !lineno gid;
        let txn = Option.value ~default:(-1) (int_field j "txn") in
        if not (List.mem txn s.prepares) then s.prepares <- txn :: s.prepares
    | "decide" ->
        let gid = gid_of () in
        let s = gid_state gid in
        if s.decided <> None then fail "line %d: second decision for gid %d" !lineno gid;
        if s.prepares = [] then
          fail "line %d: decision for gid %d with no prepare before it" !lineno gid;
        let commit = Option.value ~default:false (bool_field j "commit") in
        let participants = Option.value ~default:0 (int_field j "participants") in
        let voted = List.length s.prepares in
        if commit && voted <> participants then
          fail "line %d: gid %d committed with %d/%d branch prepares" !lineno gid voted
            participants;
        if (not commit) && voted > participants then
          fail "line %d: gid %d has %d prepares for %d participants" !lineno gid voted
            participants;
        s.decided <- Some commit
    | "resolve" ->
        let gid = gid_of () in
        let commit = Option.value ~default:false (bool_field j "commit") in
        (* presumed abort: an abort resolution needs no decision record, but
           a commit resolution without a prior commit decision in this trace
           means the decision materialized from nowhere *)
        if commit then (
          match (gid_state gid).decided with
          | Some true -> ()
          | Some false -> fail "line %d: gid %d resolved commit after an abort decision" !lineno gid
          | None -> fail "line %d: gid %d resolved commit with no prior decision" !lineno gid)
    | _ -> ()
  in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         if !summary <> None then fail "line %d: data after trace_summary" !lineno;
         match Json.of_string line with
         | Error e -> fail "line %d: %s" !lineno e
         | Ok j -> (
             match Option.bind (Json.member "ev" j) Json.to_str with
             | None -> fail "line %d: no \"ev\" field" !lineno
             | Some ev ->
                 if not (List.mem ev known) then
                   fail "line %d: unknown event %S" !lineno ev;
                 bump ev;
                 if ev = "trace_summary" then summary := Some (j, !lineno)
                 else if ev = "trace_meta" then ()
                 else begin
                   incr events;
                   if check_2pc then check_2pc_line j ev;
                   (match span_builder with
                   | Some b -> Span.Builder.feed_json b j
                   | None -> ());
                   if
                     ev = "lock_grant"
                     && Option.bind (Json.member "past2pl" j) Json.to_int
                        |> Option.value ~default:0 > 0
                   then incr past_2pl
                 end)
       end
     done
   with End_of_file -> close_in ic);
  let sj =
    match !summary with
    | None -> fail "no trace_summary line (truncated trace?)"
    | Some (j, _) -> j
  in
  let field name =
    match Option.bind (Json.member name sj) Json.to_int with
    | Some n -> n
    | None -> fail "trace_summary: missing %s" name
  in
  if field "events" <> !events then
    fail "trace_summary says %d events, file has %d" (field "events") !events;
  let dropped = field "dropped" in
  if dropped > 0 && not allow_drops then
    fail "%d events dropped (ring too small for this run?)" dropped;
  List.iter
    (fun ev ->
      if not (List.mem ev known) then fail "--require %s: not an event name" ev;
      if not (Hashtbl.mem counts ev) then fail "required event %s never occurred" ev)
    requires;
  List.iter
    (fun ev ->
      if not (List.mem ev known) then fail "--forbid %s: not an event name" ev;
      match Hashtbl.find_opt counts ev with
      | Some n -> fail "forbidden event %s occurred %d time(s)" ev n
      | None -> ())
    forbids;
  if require_past && !past_2pl = 0 then
    fail "no lock_grant with past2pl > 0 (expected ACC to pass where 2PL blocks)";
  (match span_builder with
  | None -> ()
  | Some b ->
      (* with drops the begin events may be gone, so orphans prove nothing *)
      if dropped > 0 then
        Format.printf "note: skipping orphaned-span check (%d events dropped)@." dropped
      else begin
        ignore (Span.Builder.finish b);
        let n = Span.Builder.orphans b in
        if n > 0 then begin
          List.iter
            (fun (txn, ev) -> Format.eprintf "  orphan: %s for txn %d@." ev txn)
            (Span.Builder.orphan_sample b);
          fail "%d orphaned span event(s): events for transactions never begun" n
        end
      end);
  Format.printf "%s: OK, %d events (%d dropped)@." file !events dropped;
  List.iter
    (fun ev ->
      match Hashtbl.find_opt counts ev with
      | Some n when ev <> "trace_summary" -> Format.printf "  %-18s %8d@." ev n
      | _ -> ())
    known;
  if !past_2pl > 0 then Format.printf "  %-18s %8d@." "(past-2PL grants)" !past_2pl

let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.jsonl")

let requires =
  Arg.(
    value & opt_all string []
    & info [ "require" ] ~docv:"EV" ~doc:"Fail unless event $(docv) occurs (repeatable).")

let forbids =
  Arg.(
    value & opt_all string []
    & info [ "forbid" ] ~docv:"EV"
        ~doc:"Fail if event $(docv) occurs (repeatable) — e.g. $(b,degraded) in a \
              healthy-load run.")

let require_past =
  Arg.(
    value & flag
    & info [ "require-past-2pl" ]
        ~doc:"Fail unless some lock_grant has past2pl > 0.")

let allow_drops =
  Arg.(value & flag & info [ "allow-drops" ] ~doc:"Tolerate dropped > 0.")

let check_2pc =
  Arg.(
    value & flag
    & info [ "check-2pc" ]
        ~doc:
          "Validate two-phase-commit event ordering per gid: every decide has a prior \
           prepare, a commit decision has all branch prepares, no prepare after the \
           decision, no second decision, and no resolve-commit without a prior commit \
           decision.  Opt-in because a crash tripped between the decision becoming \
           durable and its trace event legitimately loses the decide line.")

let check_spans =
  Arg.(
    value & flag
    & info [ "check-spans" ]
        ~doc:
          "Fail on orphaned span events — step/commit/prepare events for transactions \
           whose txn_begin never appeared.  Skipped (with a note) when the trace \
           dropped events, since the begins may be among the drops.")

let cmd =
  let doc = "validate a JSONL trace emitted by the ACC binaries" in
  Cmd.v
    (Cmd.info "acc-trace-check" ~doc)
    Term.(
      const main $ file $ requires $ forbids $ require_past $ allow_drops $ check_2pc
      $ check_spans)

let () = exit (Cmd.eval cmd)
