(* Offline phase profiler for JSONL traces produced by ACC_TRACE / --trace.

     acc-trace-profile dist-trace.jsonl --json phases.json --require-complete

   Reconstructs one span per transaction (Acc_obs.Span) and prints the
   phase breakdown: p50/p95/p99 per phase, per transaction type, per
   partition (recovered from the dist driver's txn-id bands), and the
   prepare-hold tail — the in-doubt window the assertional-locks-across-
   prepare design bets on keeping cheap.

   --require-complete is the CI gate: every committed transaction must have
   a complete span (all phases closed), the trace must have dropped nothing,
   and no span event may be orphaned. *)

open Cmdliner
module Json = Acc_obs.Json
module Span = Acc_obs.Span
module Partition = Acc_dist.Partition

let fail fmt =
  Format.kasprintf (fun s -> prerr_endline ("trace-profile: " ^ s); exit 1) fmt

let main file json_out require_complete =
  let ic = try open_in file with Sys_error e -> fail "%s" e in
  let b = Span.Builder.create () in
  let dropped = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match Json.of_string line with
         | Error e -> fail "line %d: %s" !lineno e
         | Ok j ->
             (match Option.bind (Json.member "ev" j) Json.to_str with
             | Some "trace_summary" ->
                 dropped :=
                   Option.value ~default:0
                     (Option.bind (Json.member "dropped" j) Json.to_int)
             | Some "trace_meta" -> () (* leading workload/schema stamp *)
             | _ -> Span.Builder.feed_json b j)
     done
   with End_of_file -> close_in ic);
  let spans = Span.Builder.finish b in
  if spans = [] then fail "%s: no spans (not a trace, or nothing ran?)" file;
  (* partition breakdown only when some txn id actually sits in a band:
     single-node traces (ids from 1) would all collapse to partition 0 *)
  let banded =
    List.exists (fun sp -> sp.Span.sp_txn >= Partition.txn_stride) spans
  in
  let report =
    if banded then Span.Report.build ~partition_of:Partition.partition_of_txn spans
    else Span.Report.build spans
  in
  Format.printf "%s: %d span(s)%s@." file (List.length spans)
    (if !dropped > 0 then Printf.sprintf " (%d events dropped)" !dropped else "");
  Format.printf "%a" Span.Report.pp report;
  let orphans = Span.Builder.orphans b in
  if orphans > 0 then Format.printf "orphaned span events: %d@." orphans;
  (match json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Json.pretty_to_channel oc
            (Json.Obj
               [
                 ("file", Json.Str file);
                 ("dropped", Json.Int !dropped);
                 ("orphans", Json.Int orphans);
                 ("phases", Span.Report.to_json report);
               ]);
          output_char oc '\n');
      Format.printf "wrote %s@." path);
  if require_complete then begin
    if !dropped > 0 then fail "%d events dropped: span reconstruction is not trustworthy" !dropped;
    if orphans > 0 then fail "%d orphaned span event(s)" orphans;
    if Span.Report.committed report = 0 then fail "no committed spans to attest";
    let n = Span.Report.incomplete_committed report in
    if n > 0 then fail "%d committed span(s) with an unresolved phase" n
  end

let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.jsonl")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the phase report as JSON (the same object the bench attaches \
              to its cells) to $(docv).")

let require_complete =
  Arg.(
    value & flag
    & info [ "require-complete" ]
        ~doc:
          "Exit 1 unless every committed transaction reconstructs to a complete span \
           (all phases closed), nothing was dropped, no event was orphaned, and at \
           least one transaction committed.")

let cmd =
  let doc = "phase-attribution profile of a JSONL trace" in
  Cmd.v
    (Cmd.info "acc-trace-profile" ~doc)
    Term.(const main $ file $ json_out $ require_complete)

let () = exit (Cmd.eval cmd)
