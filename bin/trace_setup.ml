(* Shared trace-collection plumbing for the CLI binaries.

   A trace is requested either with the --trace/--trace-chrome flags (where a
   binary exposes them) or the ACC_TRACE / ACC_TRACE_CHROME environment
   variables:

     ACC_TRACE=out.jsonl dune exec bin/tpcc_parallel.exe -- --domains 4

   Flags win over the environment.  With neither set, no sink is installed
   and every emission site in the engine stays on its no-op path. *)

module Trace = Acc_obs.Trace

type t = { jsonl : string option; chrome : string option }

let configure ?(jsonl = None) ?(chrome = None) () =
  let pick flag env = match flag with Some _ -> flag | None -> Sys.getenv_opt env in
  let t = { jsonl = pick jsonl "ACC_TRACE"; chrome = pick chrome "ACC_TRACE_CHROME" } in
  if t.jsonl <> None || t.chrome <> None then begin
    (* ACC_TRACE_CAP sizes the per-domain ring; raise it when a long run must
       complete with dropped = 0 (the CI smoke test does) *)
    let capacity = Option.bind (Sys.getenv_opt "ACC_TRACE_CAP") int_of_string_opt in
    Trace.start ?capacity ()
  end;
  t

let active t = t.jsonl <> None || t.chrome <> None

let finish t =
  if active t then begin
    let dump = Trace.stop () in
    let write path f =
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc dump)
    in
    Option.iter (fun p -> write p Trace.write_jsonl) t.jsonl;
    Option.iter (fun p -> write p Trace.write_chrome) t.chrome;
    Format.printf "trace: %d events captured, %d dropped%s%s@."
      (List.length dump.Trace.events)
      dump.Trace.dropped
      (match t.jsonl with Some p -> ", jsonl -> " ^ p | None -> "")
      (match t.chrome with Some p -> ", chrome -> " ^ p | None -> "")
  end
