(* Thin shim: the shared implementation lives in {!Acc_harness.Cli.Trace}
   now that trace collection is part of the common CLI plumbing. *)

include Acc_harness.Cli.Trace
