(* Crash-restart harness CLI: kill TPC-C at every registered crash point (or
   probabilistically in chaos mode), recover, and check the recovery
   invariants.  Exits 1 if any invariant is violated.

     acc-crash-restart                      # deterministic sweep, all points
     acc-crash-restart --point wal.append.commit --hit 3
     acc-crash-restart --chaos --seeds 1,2,3
     acc-crash-restart --list               # show registered crash points *)

open Cmdliner
module Harness = Acc_tpcc.Crash_harness
module Dist = Acc_dist.Dist_harness
module Fault = Acc_fault.Fault
module Cli = Acc_harness.Cli

(* Partitioned mode (--dist): same sweep/chaos surface, but the system under
   test is N partitions behind the 2PC coordinator and the oracle is
   no-lost-decision (DESIGN.md §15). *)
let report_dist results =
  List.iter (fun r -> Format.printf "%a@." Dist.pp_result r) results;
  let failures = List.filter Dist.failed results in
  let crashes = List.fold_left (fun acc r -> acc + r.Dist.r_crashes) 0 results in
  Format.printf "%d run(s), %d crash(es) injected, %d failure(s)@." (List.length results)
    crashes (List.length failures);
  if failures <> [] then exit 1

let report results =
  List.iter (fun r -> Format.printf "%a@." Harness.pp_result r) results;
  let failures = List.filter Harness.failed results in
  let crashes = List.fold_left (fun acc r -> acc + r.Harness.r_crashes) 0 results in
  Format.printf "%d run(s), %d crash(es) injected, %d failure(s)@." (List.length results)
    crashes (List.length failures);
  if failures <> [] then exit 1

let main list_points point hit chaos seeds txns chaos_p step_fault_p checkpoint_every hits seed
    verbose dist partitions netfault coordinator_kill matrix quick metrics_dump workload
    list_workloads scale theta mix abort_rate =
  if list_workloads then begin
    Cli.print_workloads ();
    exit 0
  end;
  (* registration happens at module-init of the code under test; touching the
     harness module links everything *)
  ignore Harness.default_config;
  ignore Dist.default_config;
  let wl = Cli.resolve ~scale ~theta ?mix ?abort_rate workload in
  let wl_name = Option.value workload ~default:"tpcc" in
  (* the sweeps below exit directly on failure, so the exposition must be
     written as soon as the runs finish, not on the way out of main *)
  let dump_metrics () = Cli.metrics_final metrics_dump in
  if list_points then
    List.iter print_endline (Fault.registered ())
  else if dist then begin
    if point <> None then failwith "--point is not supported with --dist (sweep covers every point)";
    if wl <> None then failwith "--workload is not supported with --dist (partitioned TPC-C only)";
    (* --netfault beats ACC_NETFAULT beats none *)
    let netfault =
      match netfault with
      | Some spec -> Fault.Netfault.parse spec
      | None -> (
          match Fault.Netfault.of_env () with
          | Some s -> s
          | None -> Fault.Netfault.none)
    in
    let ts = Trace_setup.configure () in
    let results =
      let config =
        {
          Dist.default_config with
          Dist.partitions;
          txns;
          chaos_p;
          hits_per_point = hits;
          seed;
          netfault;
          coordinator_kill;
          verbose;
        }
      in
      if matrix then Dist.sweep_matrix ~config ~quick ()
      else if chaos then List.map (fun seed -> Dist.chaos ~config ~seed ()) seeds
      else Dist.sweep ~config ()
    in
    Trace_setup.finish ts;
    dump_metrics ();
    report_dist results
  end
  else begin
    (* ACC_TRACE / ACC_TRACE_CHROME collect a lock-decision trace of the whole
       run — including the recoveries — for post-mortem on a failed seed *)
    let ts = Trace_setup.configure () in
    let config =
      {
        Harness.default_config with
        Harness.txns;
        chaos_p;
        step_fault_p;
        checkpoint_every;
        hits_per_point = hits;
        seed;
        verbose;
        workload = wl;
      }
    in
    let results =
      match (point, chaos) with
      | Some p, _ ->
          (* single-point mode: one deterministic crash site, chosen hit *)
          [ Harness.run_one_crash_jobs config ~jobs:(Harness.jobs_of config) ~point:p ~hit ]
      | None, true -> List.map (fun seed -> Harness.chaos ~config ~seed ()) seeds
      | None, false -> Harness.sweep ~config ()
    in
    Trace_setup.finish ~workload:wl_name ts;
    dump_metrics ();
    report results
  end

let list_points = Arg.(value & flag & info [ "list" ] ~doc:"List registered crash points and exit.")

let point =
  Arg.(value & opt (some string) None & info [ "point" ] ~docv:"NAME" ~doc:"Crash at one named point only.")

let hit = Arg.(value & opt int 1 & info [ "hit" ] ~docv:"N" ~doc:"Passage count at which --point fires.")
let chaos = Arg.(value & flag & info [ "chaos" ] ~doc:"Probabilistic crashes instead of the sweep.")

let seeds =
  Arg.(value & opt (list int) [ 1; 2; 3 ] & info [ "seeds" ] ~docv:"S1,S2" ~doc:"Chaos seeds, one soak run each.")

let txns = Arg.(value & opt int Harness.default_config.Harness.txns & info [ "txns" ] ~docv:"N" ~doc:"Transactions per run.")

let chaos_p =
  Arg.(value & opt float Harness.default_config.Harness.chaos_p & info [ "chaos-p" ] ~docv:"P" ~doc:"Per-passage crash probability in chaos mode.")

let step_fault_p =
  Arg.(value & opt float Harness.default_config.Harness.step_fault_p & info [ "step-fault-p" ] ~docv:"P" ~doc:"Retryable injected step-failure probability.")

let checkpoint_every =
  Arg.(value & opt int Harness.default_config.Harness.checkpoint_every & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Quiescent checkpoint cadence in log records.")

let hits =
  Arg.(value & opt int Harness.default_config.Harness.hits_per_point & info [ "hits-per-point" ] ~docv:"N" ~doc:"Crash at this many spread hit counts per point.")

let seed = Arg.(value & opt int Harness.default_config.Harness.seed & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Narrate each crash and recovery.")

let dist =
  Arg.(value & flag & info [ "dist" ] ~doc:"Partitioned system under test: crash the 2PC coordinator paths and check the no-lost-decision oracle.")

let partitions =
  Arg.(value & opt int Dist.default_config.Dist.partitions & info [ "partitions" ] ~docv:"N" ~doc:"Partition count in --dist mode.")

let netfault =
  Arg.(
    value
    & opt (some string) None
    & info [ "netfault" ] ~docv:"SPEC"
        ~doc:"--dist mode: message-fault spec live on every coordinator↔participant \
              connection, e.g. 'drop=0.1,dup=0.05,seed=7' or 'all=0.05' (kinds: drop, \
              dup, delay, reorder, disconnect; optional ops=decide+prepare filter). \
              Default: the ACC_NETFAULT env var, else none.")

let coordinator_kill =
  Arg.(
    value & flag
    & info [ "coordinator-kill" ]
        ~doc:"--dist mode: crashes at coordinator-side points (dist.decide, \
              dist.decision.durable) fail over the coordinator (reopen the decision \
              log, settle in-doubt branches over the transport) instead of restarting \
              every partition.")

let matrix =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:"--dist mode: sweep the full chaos matrix — crash points × transport-fault \
              kinds × restart mode (full restart and coordinator kill) — instead of the \
              plain crash-point sweep.")

let quick =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"With --matrix: one fault kind per point (the per-push smoke slice).")

let metrics_dump = Cli.metrics_dump_arg

let cmd =
  let doc = "crash a workload at registered fault points, recover, check invariants" in
  Cmd.v
    (Cmd.info "acc-crash-restart" ~doc)
    Term.(
      const main $ list_points $ point $ hit $ chaos $ seeds $ txns $ chaos_p $ step_fault_p
      $ checkpoint_every $ hits $ seed $ verbose $ dist $ partitions $ netfault
      $ coordinator_kill $ matrix $ quick $ metrics_dump $ Cli.workload_arg
      $ Cli.list_workloads_arg $ Cli.scale_arg $ Cli.theta_arg $ Cli.wl_mix_arg
      $ Cli.wl_abort_rate_arg)

let () = exit (Cmd.eval cmd)
