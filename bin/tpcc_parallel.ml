(* CLI for the multicore TPC-C stress driver: real domains, wall-clock time.

     acc-tpcc-parallel --domains 4 --warehouses 1 --seconds 5
     acc-tpcc-parallel --domains 4 --system both --txns 1000

   Exit status 1 if any run ends with consistency violations or leaked
   locks, so CI can use it as a smoke test. *)

open Cmdliner
module P = Acc_tpcc.Parallel_driver
module CA = Acc_obs.Conflict_accounting
module Cli = Acc_harness.Cli

let pp_conflicts_by_type r =
  match P.conflicts_by_txn_type_with ~step_txn_type:r.P.step_txn_type r.P.conflicts with
  | [] -> ()
  | by_type ->
      Format.printf "lock decisions by transaction type:@.";
      Format.printf "  %-14s %12s %12s %12s %12s@." "" "granted" "ACC-only"
        "blk(conv)" "blk(assert)";
      List.iter
        (fun (name, row) ->
          Format.printf "  %-14s %12d %12d %12d %12d@." name row.CA.r_granted_clean
            row.CA.r_passed_2pl row.CA.r_blocked_conv row.CA.r_blocked_assert)
        by_type

let run_one cfg =
  let r = P.run cfg in
  Format.printf "== workload=%s system=%s domains=%d shards=%d warehouses=%d seed=%d ==@."
    r.P.workload_name
    (match cfg.P.system with P.Acc -> "acc" | P.Baseline -> "2pl")
    cfg.P.domains cfg.P.shards cfg.P.params.Acc_tpcc.Params.warehouses cfg.P.seed;
  Format.printf "%a@." P.pp_report r;
  pp_conflicts_by_type r;
  List.iter (fun v -> Format.printf "  violation: %s@." v) r.P.violations;
  r

(* Partitioned mode (--partitions): N isolated partition engines behind the
   2PC coordinator (lib/dist).  The single-node knobs that have no
   partitioned counterpart (system/shards/skew/mix/admission) are ignored;
   the run always checks the merged database. *)
let run_partitioned ~partitions ~domains ~params ~seconds ~txns ~think_ms ~compute_ms
    ~seed ~deadline_ms ~batch_footprints ~transport =
  let module D = Acc_dist.Dist_driver in
  (* --transport picks the coordinator↔participant path; ACC_NETFAULT
     injects message faults on it (see RECOVERY.md) *)
  let netfault =
    match Acc_fault.Fault.Netfault.of_env () with
    | Some s -> s
    | None -> D.default_config.D.netfault
  in
  let cfg =
    {
      D.seed;
      domains;
      partitions;
      duration = seconds;
      txns_per_domain = txns;
      think_mean = think_ms /. 1000.;
      compute_between = compute_ms /. 1000.;
      params;
      lock_deadline =
        (match deadline_ms with
        | Some ms -> Some (ms /. 1000.)
        | None -> D.default_config.D.lock_deadline);
      acc_options =
        { D.default_config.D.acc_options with Acc_core.Runtime.batch_footprints };
      transport = Acc_dist.Transport.kind_of_string transport;
      netfault;
    }
  in
  let r = D.run cfg in
  Format.printf "== partitioned domains=%d partitions=%d warehouses=%d seed=%d ==@."
    domains partitions params.Acc_tpcc.Params.warehouses seed;
  Format.printf "%a@." D.pp_report r;
  List.iter (fun v -> Format.printf "  violation: %s@." v) r.D.violations;
  if r.D.violations <> [] then exit 1

let main system domains shards warehouses seconds txns think_ms compute_ms skew mix detector_ms seed warmup conflicts deadline_ms max_inflight shed_watermark batch_footprints no_fast_path group_commit wal_buffer partitions transport trace trace_chrome metrics_dump workload list_workloads scale theta abort_rate =
  if list_workloads then begin
    Cli.print_workloads ();
    exit 0
  end;
  let params = { Acc_tpcc.Params.default with Acc_tpcc.Params.warehouses } in
  (* --workload routes everything through the plugin registry; the classic
     TPC-C path (workload = None) parses --mix itself *)
  let wl =
    Cli.resolve ~scale
      ~theta:(if skew then Float.max theta 0.5 else theta)
      ?mix ?abort_rate workload
  in
  let tpcc_mix =
    match (wl, Option.value mix ~default:"standard") with
    | Some _, _ | None, "standard" -> P.Standard
    | None, ("nop" | "new-order-payment") -> P.New_order_payment
    | None, other -> failwith ("unknown mix: " ^ other)
  in
  (* --deadline-ms beats ACC_LOCK_DEADLINE_MS beats off *)
  let deadline_ms =
    match deadline_ms with
    | Some _ -> deadline_ms
    | None ->
        Option.bind (Sys.getenv_opt "ACC_LOCK_DEADLINE_MS") float_of_string_opt
  in
  (* ACC_CRASHPOINT / ACC_STEP_FAULTS arm fault injection (see RECOVERY.md) *)
  Acc_fault.Fault.configure_from_env ();
  let ts = Trace_setup.configure ~jsonl:trace ~chrome:trace_chrome () in
  let wl_name = Option.value workload ~default:"tpcc" in
  let finish_metrics = Cli.metrics_live metrics_dump in
  (match partitions with
  | Some partitions ->
      run_partitioned ~partitions ~domains ~params ~seconds ~txns ~think_ms ~compute_ms
        ~seed ~deadline_ms ~batch_footprints ~transport;
      finish_metrics ();
      Trace_setup.finish ~workload:wl_name ts;
      exit 0
  | None -> ());
  let cfg =
    {
      P.default_config with
      P.domains;
      shards;
      duration = seconds;
      txns_per_domain = txns;
      think_mean = think_ms /. 1000.;
      compute_between = compute_ms /. 1000.;
      skewed_district = skew;
      detector_cadence = detector_ms /. 1000.;
      params;
      mix = tpcc_mix;
      workload = wl;
      seed;
      warmup;
      accounting = conflicts;
      lock_deadline = Option.map (fun ms -> ms /. 1000.) deadline_ms;
      max_inflight;
      shed_watermark;
      fast_path = not no_fast_path;
      group_commit;
      wal_buffer;
      acc_options =
        { P.default_config.P.acc_options with Acc_core.Runtime.batch_footprints };
    }
  in
  let systems =
    match system with
    | "acc" -> [ P.Acc ]
    | "2pl" | "baseline" -> [ P.Baseline ]
    | "both" -> [ P.Acc; P.Baseline ]
    | other -> failwith ("unknown system: " ^ other)
  in
  let reports = List.map (fun s -> run_one { cfg with P.system = s }) systems in
  (match reports with
  | [ acc; bl ] ->
      Format.printf "acc/2pl throughput ratio: %.2f@."
        (if bl.P.throughput > 0.0 then acc.P.throughput /. bl.P.throughput else nan)
  | _ -> ());
  finish_metrics ();
  Trace_setup.finish ~workload:wl_name ts;
  let bad r =
    r.P.violations <> [] || r.P.leaked_locks > 0 || r.P.leaked_waiters > 0
  in
  if List.exists bad reports then exit 1

let system =
  Arg.(
    value & opt string "acc"
    & info [ "system"; "s" ] ~docv:"SYS" ~doc:"acc, 2pl, or both.")

let domains =
  Arg.(value & opt int 4 & info [ "domains"; "d" ] ~docv:"N" ~doc:"Worker domain count.")

let shards =
  Arg.(
    value
    & opt int Acc_parallel.Sharded_lock_table.default_shards
    & info [ "shards" ] ~docv:"N" ~doc:"Lock-table shard count.")

let warehouses =
  Arg.(value & opt int 1 & info [ "warehouses"; "w" ] ~docv:"N" ~doc:"TPC-C scale.")

let seconds =
  Arg.(
    value & opt float 2.0
    & info [ "seconds" ] ~docv:"SECS" ~doc:"Wall-clock run length (timed mode).")

let txns =
  Arg.(
    value
    & opt (some int) None
    & info [ "txns" ] ~docv:"N"
        ~doc:"Fixed transaction count per domain (overrides --seconds).")

let think_ms =
  Arg.(
    value & opt float 0.
    & info [ "think-ms" ] ~docv:"MS" ~doc:"Mean think time between transactions.")

let compute_ms =
  Arg.(
    value & opt float 1.
    & info [ "compute-ms" ] ~docv:"MS"
        ~doc:"Client compute at each intra-transaction pace point, while locks are held \
              (the paper's regime; 0 for raw engine speed).")

let skew = Arg.(value & flag & info [ "skew" ] ~doc:"Skew district selection (hotspot).")
let mix = Cli.wl_mix_arg

let detector_ms =
  Arg.(
    value & opt float 20.
    & info [ "detector-ms" ] ~docv:"MS" ~doc:"Deadlock-detector sweep cadence.")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let warmup =
  Arg.(
    value & opt float 0.
    & info [ "warmup" ] ~docv:"SECS"
        ~doc:"Timed mode: skip recording for the first SECS seconds.")

let conflicts =
  Arg.(
    value & flag
    & info [ "conflicts" ]
        ~doc:"Classify every lock decision (true conflict vs 2PL-only false \
              conflict) and print the accounting per step and transaction type.")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Lock-wait deadline per request; an expired wait aborts (and \
              compensates) the transaction like a deadlock victim. \
              Compensating steps are exempt. Default: ACC_LOCK_DEADLINE_MS \
              env var, else no deadline.")

let max_inflight =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"Admission cap: at most N multi-step transactions running at \
              once; excess arrivals shed and retry with jittered backoff.")

let shed_watermark =
  Arg.(
    value
    & opt (some float) None
    & info [ "shed-watermark" ] ~docv:"RATE"
        ~doc:"Shed admissions while the abort rate (deadlock victims + lock \
              timeouts per second) exceeds RATE.")

let batch_footprints =
  Arg.(
    value & flag
    & info [ "batch-footprints" ]
        ~doc:"Pre-acquire each step's declared lock footprint in one batched, \
              canonically-ordered call (one shard-mutex round trip per shard \
              touched) instead of lock by lock.")

let no_fast_path =
  Arg.(
    value & flag
    & info [ "no-fast-path" ]
        ~doc:"Disable the lock manager's lock-free uncontended fast path \
              (every request then takes its shard mutex; for A/B runs).")

let group_commit =
  Arg.(
    value & flag
    & info [ "group-commit" ]
        ~doc:"Group-commit the WAL: appends stage in per-domain buffers and \
              concurrent commit-time flushes merge into one leader-flushed \
              batch per append-mutex round trip.")

let wal_buffer =
  Arg.(
    value & opt int 0
    & info [ "wal-buffer" ] ~docv:"N"
        ~doc:"Per-domain WAL buffer capacity in records (0 = direct, every \
              append is its own flush).  Implied at the default capacity by \
              --group-commit.")

let partitions =
  Arg.(
    value
    & opt (some int) None
    & info [ "partitions" ] ~docv:"N"
        ~doc:"Partitioned mode: split the warehouses across N isolated \
              partition engines behind a two-phase-commit coordinator \
              (lib/dist); cross-partition transactions run as 2PC branch \
              programs.  Ignores --system/--shards/--skew/--mix and the \
              admission knobs.")

let transport =
  Arg.(
    value & opt string "loopback"
    & info [ "transport" ] ~docv:"KIND"
        ~doc:"Partitioned mode: coordinator↔participant transport — \
              'loopback' (in-process, default) or 'pipe' (socketpair with \
              each partition's request loop on a dedicated domain).  \
              ACC_NETFAULT=spec injects message faults on either.")

let trace = Cli.Trace.jsonl_arg
let trace_chrome = Cli.Trace.chrome_arg
let metrics_dump = Cli.metrics_dump_arg

let cmd =
  let doc = "run a workload on real domains against the sharded lock manager" in
  Cmd.v
    (Cmd.info "acc-tpcc-parallel" ~doc)
    Term.(
      const main $ system $ domains $ shards $ warehouses $ seconds $ txns $ think_ms
      $ compute_ms $ skew $ mix $ detector_ms $ seed $ warmup $ conflicts $ deadline_ms
      $ max_inflight $ shed_watermark $ batch_footprints $ no_fast_path $ group_commit
      $ wal_buffer $ partitions $ transport $ trace $ trace_chrome $ metrics_dump
      $ Cli.workload_arg $ Cli.list_workloads_arg $ Cli.scale_arg $ Cli.theta_arg
      $ Cli.wl_abort_rate_arg)

let () = exit (Cmd.eval cmd)
