(* CLI for the multicore TPC-C stress driver: real domains, wall-clock time.

     acc-tpcc-parallel --domains 4 --warehouses 1 --seconds 5
     acc-tpcc-parallel --domains 4 --system both --txns 1000

   Exit status 1 if any run ends with consistency violations or leaked
   locks, so CI can use it as a smoke test. *)

open Cmdliner
module P = Acc_tpcc.Parallel_driver

let run_one cfg =
  let r = P.run cfg in
  Format.printf "== system=%s domains=%d shards=%d warehouses=%d seed=%d ==@."
    (match cfg.P.system with P.Acc -> "acc" | P.Baseline -> "2pl")
    cfg.P.domains cfg.P.shards cfg.P.params.Acc_tpcc.Params.warehouses cfg.P.seed;
  Format.printf "%a@." P.pp_report r;
  List.iter (fun v -> Format.printf "  violation: %s@." v) r.P.violations;
  r

let main system domains shards warehouses seconds txns think_ms compute_ms skew mix detector_ms seed =
  let params = { Acc_tpcc.Params.default with Acc_tpcc.Params.warehouses } in
  let mix =
    match mix with
    | "standard" -> P.Standard
    | "nop" | "new-order-payment" -> P.New_order_payment
    | other -> failwith ("unknown mix: " ^ other)
  in
  let cfg =
    {
      P.default_config with
      P.domains;
      shards;
      duration = seconds;
      txns_per_domain = txns;
      think_mean = think_ms /. 1000.;
      compute_between = compute_ms /. 1000.;
      skewed_district = skew;
      detector_cadence = detector_ms /. 1000.;
      params;
      mix;
      seed;
    }
  in
  let systems =
    match system with
    | "acc" -> [ P.Acc ]
    | "2pl" | "baseline" -> [ P.Baseline ]
    | "both" -> [ P.Acc; P.Baseline ]
    | other -> failwith ("unknown system: " ^ other)
  in
  let reports = List.map (fun s -> run_one { cfg with P.system = s }) systems in
  (match reports with
  | [ acc; bl ] ->
      Format.printf "acc/2pl throughput ratio: %.2f@."
        (if bl.P.throughput > 0.0 then acc.P.throughput /. bl.P.throughput else nan)
  | _ -> ());
  let bad r =
    r.P.violations <> [] || r.P.leaked_locks > 0 || r.P.leaked_waiters > 0
  in
  if List.exists bad reports then exit 1

let system =
  Arg.(
    value & opt string "acc"
    & info [ "system"; "s" ] ~docv:"SYS" ~doc:"acc, 2pl, or both.")

let domains =
  Arg.(value & opt int 4 & info [ "domains"; "d" ] ~docv:"N" ~doc:"Worker domain count.")

let shards =
  Arg.(
    value
    & opt int Acc_parallel.Sharded_lock_table.default_shards
    & info [ "shards" ] ~docv:"N" ~doc:"Lock-table shard count.")

let warehouses =
  Arg.(value & opt int 1 & info [ "warehouses"; "w" ] ~docv:"N" ~doc:"TPC-C scale.")

let seconds =
  Arg.(
    value & opt float 2.0
    & info [ "seconds" ] ~docv:"SECS" ~doc:"Wall-clock run length (timed mode).")

let txns =
  Arg.(
    value
    & opt (some int) None
    & info [ "txns" ] ~docv:"N"
        ~doc:"Fixed transaction count per domain (overrides --seconds).")

let think_ms =
  Arg.(
    value & opt float 0.
    & info [ "think-ms" ] ~docv:"MS" ~doc:"Mean think time between transactions.")

let compute_ms =
  Arg.(
    value & opt float 1.
    & info [ "compute-ms" ] ~docv:"MS"
        ~doc:"Client compute at each intra-transaction pace point, while locks are held \
              (the paper's regime; 0 for raw engine speed).")

let skew = Arg.(value & flag & info [ "skew" ] ~doc:"Skew district selection (hotspot).")

let mix =
  Arg.(
    value & opt string "standard"
    & info [ "mix" ] ~docv:"MIX" ~doc:"standard or new-order-payment.")

let detector_ms =
  Arg.(
    value & opt float 20.
    & info [ "detector-ms" ] ~docv:"MS" ~doc:"Deadlock-detector sweep cadence.")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let cmd =
  let doc = "run TPC-C on real domains against the sharded lock manager" in
  Cmd.v
    (Cmd.info "acc-tpcc-parallel" ~doc)
    Term.(
      const main $ system $ domains $ shards $ warehouses $ seconds $ txns $ think_ms
      $ compute_ms $ skew $ mix $ detector_ms $ seed)

let () = exit (Cmd.eval cmd)
