(* CLI for a single TPC-C simulation run with explicit knobs: the tool for
   exploring the space outside the canned figures.

     acc-tpcc-run --system acc --terminals 40 --servers 3 --skew
     acc-tpcc-run --system baseline --compute-ms 4 --horizon 600 *)

open Cmdliner
module Driver = Acc_tpcc.Driver
module Tally = Acc_util.Stats.Tally
module Cli = Acc_harness.Cli

let main system terminals servers horizon think compute_ms skew min_items max_items seed verbose
    workload list_workloads scale theta mix abort_rate =
  if list_workloads then begin
    Cli.print_workloads ();
    exit 0
  end;
  let system =
    match system with
    | "acc" -> Driver.Acc
    | "baseline" | "2pl" -> Driver.Baseline
    | other -> failwith ("unknown system: " ^ other)
  in
  let wl =
    Cli.resolve ~scale
      ~theta:(if skew then Float.max theta 0.5 else theta)
      ?mix ?abort_rate workload
  in
  let wl_name = Option.value workload ~default:"tpcc" in
  let cfg =
    {
      Driver.default_config with
      Driver.system;
      terminals;
      servers;
      horizon;
      warmup = horizon /. 10.;
      think_mean = think;
      compute_between = compute_ms /. 1000.;
      skewed_district = skew;
      min_items;
      max_items;
      seed;
      cpu_per_unit = 0.005;
      workload = wl;
    }
  in
  (* ACC_TRACE / ACC_TRACE_CHROME collect a lock-decision trace of the run
     (timestamps are virtual sim seconds); ACC_CRASHPOINT / ACC_STEP_FAULTS
     arm fault injection (see RECOVERY.md) *)
  Acc_fault.Fault.configure_from_env ();
  let ts = Trace_setup.configure () in
  let r = Driver.run cfg in
  Trace_setup.finish ~workload:wl_name ts;
  Format.printf "workload=%s system=%s terminals=%d servers=%d skew=%b compute=%.0fms seed=%d@."
    wl_name
    (match system with Driver.Acc -> "acc" | Driver.Baseline -> "baseline")
    terminals servers skew compute_ms seed;
  Format.printf "completed          %d (%.2f txn/s)@." r.Driver.completed r.Driver.throughput;
  Format.printf "response mean      %.4f s@." (Driver.mean_response r);
  Format.printf "response p90       %.4f s@." (Tally.percentile r.Driver.response 0.9);
  Format.printf "deadlock victims   %d@." r.Driver.deadlock_victims;
  Format.printf "forced aborts      %d@." r.Driver.forced_aborts;
  Format.printf "compensations      %d@." r.Driver.compensations;
  Format.printf "server utilization %.2f@." r.Driver.cpu_utilization;
  if verbose then
    List.iter
      (fun (name, tally) ->
        Format.printf "  %-14s n=%-5d mean=%.4f p90=%.4f@." name (Tally.count tally)
          (Tally.mean tally) (Tally.percentile tally 0.9))
      r.Driver.per_type;
  match r.Driver.violations with
  | [] ->
      Format.printf "consistency        OK%s@."
        (if wl = None then " (12 conditions)" else "")
  | problems ->
      Format.printf "consistency        %d VIOLATIONS@." (List.length problems);
      List.iter (fun p -> Format.printf "  %s@." p) problems;
      exit 1

let system =
  Arg.(value & opt string "acc" & info [ "system"; "s" ] ~docv:"SYS" ~doc:"acc or baseline.")

let terminals = Arg.(value & opt int 30 & info [ "terminals"; "t" ] ~docv:"N" ~doc:"Terminal count.")
let servers = Arg.(value & opt int 3 & info [ "servers" ] ~docv:"N" ~doc:"Database server processes.")
let horizon = Arg.(value & opt float 300. & info [ "horizon" ] ~docv:"SECS" ~doc:"Simulated load duration.")
let think = Arg.(value & opt float 5. & info [ "think" ] ~docv:"SECS" ~doc:"Mean terminal think time.")

let compute_ms =
  Arg.(value & opt float 0. & info [ "compute-ms" ] ~docv:"MS" ~doc:"Client compute between successive statements.")

let skew = Arg.(value & flag & info [ "skew" ] ~doc:"Skew district selection (hotspot).")

let min_items =
  Arg.(value & opt int 5 & info [ "min-items" ] ~docv:"N" ~doc:"Minimum items per new-order.")

let max_items =
  Arg.(value & opt int 15 & info [ "max-items" ] ~docv:"N" ~doc:"Maximum items per new-order.")
let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-transaction-type breakdown.")

let cmd =
  let doc = "run one TPC-C simulation against the ACC or the strict-2PL baseline" in
  Cmd.v (Cmd.info "acc-tpcc-run" ~doc)
    Term.(
      const main $ system $ terminals $ servers $ horizon $ think $ compute_ms $ skew
      $ min_items $ max_items $ seed $ verbose $ Cli.workload_arg $ Cli.list_workloads_arg
      $ Cli.scale_arg $ Cli.theta_arg $ Cli.wl_mix_arg $ Cli.wl_abort_rate_arg)

let () = exit (Cmd.eval cmd)
